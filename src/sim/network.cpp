#include "sim/network.h"

#include <algorithm>
#include <stdexcept>

#include "obs/profile.h"
#include "obs/registry.h"
#include "obs/sink.h"
#include "obs/span.h"
#include "sim/contract.h"  // static_asserts run in every build via this TU

namespace arbmis::sim {

namespace {

// Process-wide default applied when NetworkOptions::num_threads == 0; see
// ScopedNumThreads. Plain (non-atomic) on purpose: overrides are scoped to
// single-threaded setup code, never to a running phase.
std::uint32_t g_default_num_threads = 0;

// Process-wide default applied when NetworkOptions::inbox ==
// InboxImpl::kProcessDefault; see ScopedInboxImpl. Same mutation contract
// as g_default_num_threads.
InboxImpl g_default_inbox_impl = InboxImpl::kArena;

}  // namespace

std::uint32_t default_num_threads() noexcept { return g_default_num_threads; }

ScopedNumThreads::ScopedNumThreads(std::uint32_t num_threads) noexcept
    : previous_(g_default_num_threads) {
  g_default_num_threads = num_threads;
}

ScopedNumThreads::~ScopedNumThreads() {
  g_default_num_threads = previous_;
}

InboxImpl default_inbox_impl() noexcept { return g_default_inbox_impl; }

ScopedInboxImpl::ScopedInboxImpl(InboxImpl impl) noexcept
    : previous_(g_default_inbox_impl) {
  g_default_inbox_impl =
      impl == InboxImpl::kProcessDefault ? InboxImpl::kArena : impl;
}

ScopedInboxImpl::~ScopedInboxImpl() {
  g_default_inbox_impl = previous_;
}

void RunStats::absorb(const RunStats& other) noexcept {
  rounds += other.rounds;
  messages += other.messages;
  payload_bits += other.payload_bits;
  max_edge_load = std::max(max_edge_load, other.max_edge_load);
  all_halted = all_halted && other.all_halted;
}

Network::Network(graph::GraphView g, std::uint64_t seed,
                 NetworkOptions options)
    : graph_(g),
      options_(options),
      seed_(seed),
      fault_(options.fault),
      num_threads_(options.num_threads != 0 ? options.num_threads
                                            : default_num_threads()),
      use_arena_((options.inbox == InboxImpl::kProcessDefault
                      ? default_inbox_impl()
                      : options.inbox) != InboxImpl::kReferenceVectors),
      checker_(g, options.model_check,
               options.max_messages_per_edge_per_round) {
  const graph::NodeId n = g.num_nodes();
  rngs_.reserve(n);
  const util::Rng base(seed);
  for (graph::NodeId v = 0; v < n; ++v) rngs_.push_back(base.child(v));
  halted_.assign(n, 0);
  edge_offset_.resize(n + 1, 0);
  for (graph::NodeId v = 0; v < n; ++v) {
    edge_offset_[v + 1] = edge_offset_[v] + g.degree(v);
  }
  edge_sends_.assign(edge_offset_[n], 0);
  edge_epoch_.assign(edge_offset_[n], ~std::uint32_t{0});
  if (use_arena_) {
    // All storage a run can touch on the fault-free path, sized once: one
    // Message slot per directed edge, double-buffered, plus fill counts.
    arena_cur_.resize(edge_offset_[n]);
    arena_next_.resize(edge_offset_[n]);
    inbox_count_cur_.assign(n, 0);
    inbox_count_next_.assign(n, 0);
    overflow_cur_.resize(n);
    overflow_next_.resize(n);
  } else {
    inbox_.resize(n);
    next_inbox_.resize(n);
  }
  if (num_threads_ > 0) {
    pool_ = std::make_unique<ThreadPool>(num_threads_);
    lanes_.resize(num_threads_);
    shard_bounds_.resize(static_cast<std::size_t>(num_threads_) + 1, 0);
  }
}

void Network::deliver(graph::NodeId target, const Message& msg) {
  ++in_flight_next_;
  if (use_arena_) {
    std::uint32_t& count = inbox_count_next_[target];
    if (count < graph_.degree(target)) [[likely]] {
      arena_next_[edge_offset_[target] + count] = msg;
    } else {
      // Past one-per-directed-edge capacity: fault duplicates, or a run
      // with enforce_congest off. Order is preserved — the side buffer
      // holds exactly the suffix of the node's delivery sequence.
      overflow_next_[target].push_back(msg);
      overflow_next_dirty_ = true;
    }
    ++count;
  } else {
    next_inbox_[target].push_back(msg);
  }
}

std::span<const Message> Network::current_inbox(graph::NodeId v,
                                                ExecLane* lane) {
  if (!use_arena_) return inbox_[v];
  const std::uint32_t count = inbox_count_cur_[v];
  const std::uint64_t base = edge_offset_[v];
  const graph::NodeId cap = graph_.degree(v);
  if (count <= cap) [[likely]] {
    return std::span<const Message>(arena_cur_.data() + base, count);
  }
  // Overflowed inbox: splice region + side buffer into contiguous scratch
  // (per-worker under the parallel executor; the callback only needs the
  // span for its own duration).
  std::vector<Message>& scratch = lane ? lane->scratch : scratch_inbox_;
  scratch.assign(arena_cur_.begin() + static_cast<std::ptrdiff_t>(base),
                 arena_cur_.begin() + static_cast<std::ptrdiff_t>(base + cap));
  scratch.insert(scratch.end(), overflow_cur_[v].begin(),
                 overflow_cur_[v].end());
  return scratch;
}

void Network::do_send(ExecLane* lane, graph::NodeId from, graph::NodeId port,
                      std::uint32_t tag, std::uint64_t payload) {
  const auto nbrs = graph_.neighbors(from);
  if (port >= nbrs.size()) {
    throw std::logic_error("send: port out of range");
  }
  // The (from, port) counter slot is owned by the sender, hence by exactly
  // one worker — updated in place under both executors.
  const std::uint64_t slot = edge_offset_[from] + port;
  if (edge_epoch_[slot] != round_) {
    edge_epoch_[slot] = round_;
    edge_sends_[slot] = 0;
  }
  const std::uint32_t load = ++edge_sends_[slot];
  if (options_.enforce_congest &&
      load > options_.max_messages_per_edge_per_round) {
    throw std::logic_error(
        "CONGEST violation: more than the per-edge message budget sent on "
        "one edge in one round");
  }
  const graph::NodeId target = nbrs[port];
  // Fault seam: the fate of a message is a pure function of (plan, edge
  // slot, round), so workers can decide it independently and determinism
  // across thread counts is preserved. Messages to a down node are dropped
  // outright; the sender paid its CONGEST budget either way.
  std::uint8_t copies = 1;
  if (fault_ != nullptr) {
    copies = fault_->is_down(target)
                 ? std::uint8_t{0}
                 : fault_->on_message(from, target, slot, round_).copies;
    if (copies == 0) {
      (lane ? lane->fault_drops : round_fault_drops_) += 1;
    } else if (copies > 1) {
      (lane ? lane->fault_duplicates : round_fault_duplicates_) +=
          std::uint64_t{copies} - 1;
    }
  }
  const bool rng_bearing =
      checker_.on_send(lane ? &lane->check : nullptr, from, target, slot,
                       payload, round_, copies);
  if (lane) {
    lane->max_edge_load = std::max(lane->max_edge_load, load);
    if (copies > 0) {
      lane->sends.push_back(
          ExecLane::StagedSend{target, Message{from, tag, payload},
                               rng_bearing, copies});
    }
  } else {
    stats_.max_edge_load = std::max(stats_.max_edge_load, load);
    for (std::uint8_t c = 0; c < copies; ++c) {
      deliver(target, Message{from, tag, payload});
    }
  }
}

void Network::do_halt(ExecLane* lane, graph::NodeId v) {
  checker_.on_halt(lane ? &lane->check : nullptr, v);
  if (halted_[v] == 0) {
    halted_[v] = 1;  // own-node write; num_halted_ is shared, so defer it
    if (lane) {
      ++lane->halts;
    } else {
      ++num_halted_;
    }
  }
}

util::Rng& Network::draw_rng(ExecLane* lane, graph::NodeId v) {
  checker_.on_rng_read(lane ? &lane->check : nullptr, v, round_);
  ++(lane ? lane->rng_draws : rng_draws_);
  return rngs_[v];
}

void Network::step_node(Algorithm& algorithm, graph::NodeId v,
                        ExecLane* lane) {
  NodeContext ctx(*this, v, lane);
  ModelCheckerLane* const check = lane ? &lane->check : nullptr;
  checker_.begin_callback(check, v);
  if (round_ == 0) {
    algorithm.on_start(ctx);
  } else {
    checker_.on_consume(check, v, round_);
    const std::span<const Message> inbox = current_inbox(v, lane);
    algorithm.on_round(ctx, inbox);
    // Actual-width accounting (RoundDelta::payload_bits): sum the real
    // per-message widths of the consumed inbox. Commutative, so worker
    // threads may feed the attached registry's histogram directly.
    std::uint64_t consumed_bits = 0;
    obs::Registry* const reg = obs::registry();
    for (const Message& m : inbox) {
      const std::uint64_t bits = message_bits(m);
      consumed_bits += bits;
      if (reg != nullptr) reg->observe("sim.message_bits", bits);
    }
    if (lane) {
      lane->messages += inbox.size();
      lane->payload_bits += consumed_bits;
    } else {
      stats_.messages += inbox.size();
      round_payload_bits_ += consumed_bits;
    }
  }
  checker_.end_callback(check);
}

void Network::run_phase(Algorithm& algorithm) {
  if (num_threads_ == 0) {
    const graph::NodeId n = graph_.num_nodes();
    for (graph::NodeId v = 0; v < n; ++v) {
      if (halted_[v] != 0) continue;
      if (fault_ != nullptr && fault_->is_down(v)) continue;
      step_node(algorithm, v, nullptr);
    }
    return;
  }
  run_phase_parallel(algorithm);
}

void Network::run_phase_parallel(Algorithm& algorithm) {
  const graph::NodeId n = graph_.num_nodes();
  const std::uint32_t t = num_threads_;
  // Shard non-halted nodes into contiguous ranges of near-equal alive
  // count: shard s owns alive indices [alive*s/t, alive*(s+1)/t).
  const std::uint64_t alive = n - num_halted_;
  std::fill(shard_bounds_.begin(), shard_bounds_.end(), n);
  shard_bounds_[0] = 0;
  std::uint64_t alive_seen = 0;
  std::uint32_t s = 1;
  for (graph::NodeId v = 0; v < n && s < t; ++v) {
    while (s < t && alive_seen == alive * s / t) {
      shard_bounds_[s] = v;
      ++s;
    }
    if (halted_[v] == 0) ++alive_seen;
  }
  // Any bounds not reached stay at n (pre-filled): trailing empty shards.

  pool_->run([&](std::uint32_t w) {
    obs::set_thread_lane(w + 1);
    OBS_SCOPE("net.shard");
    ExecLane& lane = lanes_[w];
    const graph::NodeId begin = shard_bounds_[w];
    const graph::NodeId end = shard_bounds_[w + 1];
    for (graph::NodeId v = begin; v < end; ++v) {
      if (halted_[v] != 0) continue;
      // The down set is frozen at the barrier, so workers read a
      // consistent snapshot (no mid-phase crashes).
      if (fault_ != nullptr && fault_->is_down(v)) continue;
      step_node(algorithm, v, &lane);
    }
  });

  // Barrier merge, in shard (= ascending node-id) order: replaying the
  // lane buffers in this order reproduces the serial executor's inbox
  // ordering, stats, and checker ledger byte-for-byte.
  OBS_SCOPE("net.merge");
  const bool emit_lanes = obs::telemetry_attached();
  std::uint32_t lane_index = 0;
  for (ExecLane& lane : lanes_) {
    if (emit_lanes) {
      // kExec category: legitimately varies by thread count, excluded by
      // the default sink configuration (see obs/events.h).
      obs::emit(obs::make_event(obs::EventKind::kLaneMerge, round_, {},
                                lane_index, lane.sends.size(), lane.messages,
                                lane.halts));
    }
    ++lane_index;
    for (const ExecLane::StagedSend& staged : lane.sends) {
      // copies > 1 = network duplication: each delivered copy is one inbox
      // entry and (if randomness-bearing) one read-k ledger entry.
      for (std::uint8_t c = 0; c < staged.copies; ++c) {
        deliver(staged.target, staged.msg);
        if (staged.rng_bearing) {
          checker_.on_delivered_origin(staged.target, staged.msg.src);
        }
      }
    }
    stats_.messages += lane.messages;
    round_payload_bits_ += lane.payload_bits;
    stats_.max_edge_load = std::max(stats_.max_edge_load, lane.max_edge_load);
    num_halted_ += lane.halts;
    rng_draws_ += lane.rng_draws;
    round_fault_drops_ += lane.fault_drops;
    round_fault_duplicates_ += lane.fault_duplicates;
    checker_.merge_lane(lane.check, round_);
    lane.reset();
  }
}

RunStats Network::run(Algorithm& algorithm, std::uint32_t max_rounds,
                      const RoundObserver& observer) {
  OBS_SCOPE("net.run");
  // Child span: silent outside an open request span (obs/span.h), so only
  // the serving path gains the bracket around each simulator run.
  const obs::ScopedChildSpan run_span("sim.run", graph_.num_nodes());
  const graph::NodeId n = graph_.num_nodes();
  if (obs::telemetry_attached()) {
    obs::emit(obs::make_event(obs::EventKind::kRunBegin, /*round=*/0,
                              algorithm.name(), n, graph_.num_edges(), seed_,
                              max_rounds, options_.enforce_congest ? 1 : 0));
  }
  // Reset per-run state; RNG streams intentionally persist across runs.
  std::fill(halted_.begin(), halted_.end(), 0);
  num_halted_ = 0;
  round_ = 0;
  stats_ = RunStats{};
  if (use_arena_) {
    // Occupancy counts are the arena's only per-run state; slot contents
    // are dead once the counts read zero.
    std::fill(inbox_count_cur_.begin(), inbox_count_cur_.end(), 0);
    std::fill(inbox_count_next_.begin(), inbox_count_next_.end(), 0);
    if (overflow_cur_dirty_) {
      for (auto& box : overflow_cur_) box.clear();
      overflow_cur_dirty_ = false;
    }
    if (overflow_next_dirty_) {
      for (auto& box : overflow_next_) box.clear();
      overflow_next_dirty_ = false;
    }
  } else {
    for (auto& box : inbox_) box.clear();
    for (auto& box : next_inbox_) box.clear();
  }
  in_flight_next_ = 0;
  rng_draws_ = 0;
  std::fill(edge_epoch_.begin(), edge_epoch_.end(), ~std::uint32_t{0});
  last_round_ = RoundDelta{};
  round_fault_drops_ = 0;
  round_fault_duplicates_ = 0;
  round_payload_bits_ = 0;
  checker_.begin_run();

  RoundFaultEvents events{};
  if (fault_ != nullptr) {
    fault_->begin_run();
    // Crash/recovery events resolve serially at the barrier, before any
    // callback of the round runs, so the down set is frozen per phase.
    events = fault_->begin_round(0, halted_);
  }
  std::uint64_t messages_before = stats_.messages;
  run_phase(algorithm);  // round 0: on_start
  flush_round_accounting(messages_before, events);

  while (round_ < max_rounds) {
    OBS_SCOPE("net.round");
    if (num_halted_ >= n) break;
    // With permanent crashes the halted count can never reach n: stop once
    // every node is either halted or down and no recovery is scheduled.
    if (fault_ != nullptr && !fault_->recovery_pending() &&
        num_halted_ + fault_->num_down() >= n) {
      break;
    }
    if (algorithm.is_reactive()) {
      // Quiescence cut: nothing in flight means every further round is a
      // global no-op for a reactive algorithm. The staged-message counter
      // makes this O(1) (it counts exactly the entries the reference
      // implementation's per-box scan would find).
      if (in_flight_next_ == 0) break;
    }
    // Deliver: next becomes current.
    if (use_arena_) {
      std::swap(arena_cur_, arena_next_);
      std::swap(inbox_count_cur_, inbox_count_next_);
      std::fill(inbox_count_next_.begin(), inbox_count_next_.end(), 0);
      std::swap(overflow_cur_, overflow_next_);
      std::swap(overflow_cur_dirty_, overflow_next_dirty_);
      if (overflow_next_dirty_) {
        for (auto& box : overflow_next_) box.clear();
        overflow_next_dirty_ = false;
      }
    } else {
      std::swap(inbox_, next_inbox_);
      for (auto& box : next_inbox_) box.clear();
    }
    in_flight_next_ = 0;
    ++round_;
    checker_.begin_round(round_);
    events = RoundFaultEvents{};
    if (fault_ != nullptr) events = fault_->begin_round(round_, halted_);
    messages_before = stats_.messages;
    run_phase(algorithm);
    ++stats_.rounds;
    flush_round_accounting(messages_before, events);
    if (observer) observer(*this, round_);
  }
  stats_.payload_bits = stats_.messages * kBitsPerMessage;
  stats_.all_halted = (num_halted_ == n);
  if (fault_ != nullptr) checker_.record_fault_totals(fault_->totals());
  checker_.end_run(stats_.rounds);
  if (obs::telemetry_attached()) {
    obs::emit(obs::make_event(obs::EventKind::kRunEnd, round_, {},
                              stats_.rounds, stats_.messages,
                              stats_.payload_bits, stats_.max_edge_load,
                              stats_.all_halted ? 1 : 0, rng_draws_));
    if (checker_.enabled()) {
      const ModelCheckReport& report = checker_.report();
      obs::emit(obs::make_event(
          obs::EventKind::kModelCheck, round_, {}, report.k,
          report.max_message_bits, report.max_edge_bits_per_round,
          report.max_rng_reads_per_round, report.violations,
          report.edge_bit_budget));
    }
  }
  if (obs::Registry* const reg = obs::registry()) {
    reg->add("sim.runs");
    reg->add("sim.rounds", stats_.rounds);
    reg->add("sim.rng_draws", rng_draws_);
    reg->set("sim.max_edge_load", stats_.max_edge_load);
    if (checker_.enabled()) {
      reg->set("sim.model.k", checker_.report().k);
      reg->add("sim.model.violations", checker_.report().violations);
    }
  }
  return stats_;
}

void Network::flush_round_accounting(std::uint64_t messages_before,
                                     RoundFaultEvents events) {
  last_round_.round = round_;
  last_round_.messages = stats_.messages - messages_before;
  last_round_.payload_bits = round_payload_bits_;
  last_round_.fault_drops = round_fault_drops_;
  last_round_.fault_duplicates = round_fault_duplicates_;
  last_round_.fault_crashes = events.crashes;
  last_round_.fault_recoveries = events.recoveries;
  if (fault_ != nullptr) {
    fault_->account(round_, round_fault_drops_, round_fault_duplicates_);
  }
  if (obs::telemetry_attached()) {
    const ModelCheckReport& report = checker_.report();
    // The per-round checker series are lazily sized; a round with no sends
    // (or a disabled checker) may not have slots yet.
    const std::uint32_t width_now =
        round_ < report.round_max_message_bits.size()
            ? report.round_max_message_bits[round_]
            : 0;
    // The read-k ledger of a round's draws completes one round later, when
    // neighbors consume them — so report the *previous* round's final k.
    const std::uint32_t k_prev =
        round_ >= 1 && round_ - 1 < report.round_k.size()
            ? report.round_k[round_ - 1]
            : 0;
    obs::emit(obs::make_event(obs::EventKind::kRound, round_, {}, num_halted_,
                              last_round_.messages, last_round_.payload_bits,
                              in_flight_next_, rng_draws_, width_now,
                              k_prev));
    if (fault_ != nullptr) {
      obs::emit(obs::make_event(obs::EventKind::kFaultRound, round_, {},
                                last_round_.fault_drops,
                                last_round_.fault_duplicates,
                                last_round_.fault_crashes,
                                last_round_.fault_recoveries));
    }
  }
  if (obs::Registry* const reg = obs::registry()) {
    reg->add("sim.messages", last_round_.messages);
    reg->add("sim.payload_bits", last_round_.payload_bits);
    if (fault_ != nullptr) {
      reg->add("sim.fault.drops", last_round_.fault_drops);
      reg->add("sim.fault.duplicates", last_round_.fault_duplicates);
      reg->add("sim.fault.crashes", last_round_.fault_crashes);
      reg->add("sim.fault.recoveries", last_round_.fault_recoveries);
    }
    reg->snapshot_round(round_);
  }
  round_fault_drops_ = 0;
  round_fault_duplicates_ = 0;
  round_payload_bits_ = 0;
}

graph::NodeId NodeContext::degree() const noexcept {
  return net_->graph_.degree(id_);
}

std::span<const graph::NodeId> NodeContext::neighbors() const noexcept {
  return net_->graph_.neighbors(id_);
}

std::uint32_t NodeContext::round() const noexcept { return net_->round_; }

graph::NodeId NodeContext::network_size() const noexcept {
  return net_->graph_.num_nodes();
}

void NodeContext::send(graph::NodeId port, std::uint32_t tag,
                       std::uint64_t payload) {
  net_->do_send(lane_, id_, port, tag, payload);
}

void NodeContext::broadcast(std::uint32_t tag, std::uint64_t payload) {
  const auto deg = degree();
  for (graph::NodeId port = 0; port < deg; ++port) send(port, tag, payload);
}

void NodeContext::halt() { net_->do_halt(lane_, id_); }

std::uint64_t NodeRandom::next() {
  return net_->draw_rng(lane_, id_).next();
}

double NodeRandom::uniform01() {
  return net_->draw_rng(lane_, id_).uniform01();
}

std::uint64_t NodeRandom::below(std::uint64_t bound) {
  return net_->draw_rng(lane_, id_).below(bound);
}

std::int64_t NodeRandom::range(std::int64_t lo, std::int64_t hi) {
  return net_->draw_rng(lane_, id_).range(lo, hi);
}

bool NodeRandom::bernoulli(double p) {
  return net_->draw_rng(lane_, id_).bernoulli(p);
}

}  // namespace arbmis::sim
