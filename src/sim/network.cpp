#include "sim/network.h"

#include <algorithm>
#include <stdexcept>

namespace arbmis::sim {

void RunStats::absorb(const RunStats& other) noexcept {
  rounds += other.rounds;
  messages += other.messages;
  payload_bits += other.payload_bits;
  max_edge_load = std::max(max_edge_load, other.max_edge_load);
  all_halted = other.all_halted;
}

Network::Network(const graph::Graph& g, std::uint64_t seed,
                 NetworkOptions options)
    : graph_(&g),
      options_(options),
      checker_(g, options.model_check,
               options.max_messages_per_edge_per_round) {
  const graph::NodeId n = g.num_nodes();
  rngs_.reserve(n);
  const util::Rng base(seed);
  for (graph::NodeId v = 0; v < n; ++v) rngs_.push_back(base.child(v));
  halted_.assign(n, false);
  inbox_.resize(n);
  next_inbox_.resize(n);
  edge_offset_.resize(n + 1, 0);
  for (graph::NodeId v = 0; v < n; ++v) {
    edge_offset_[v + 1] = edge_offset_[v] + g.degree(v);
  }
  edge_sends_.assign(edge_offset_[n], 0);
  edge_epoch_.assign(edge_offset_[n], ~std::uint32_t{0});
}

void Network::do_send(graph::NodeId from, graph::NodeId port,
                      std::uint32_t tag, std::uint64_t payload) {
  const auto nbrs = graph_->neighbors(from);
  if (port >= nbrs.size()) {
    throw std::logic_error("send: port out of range");
  }
  const std::uint64_t slot = edge_offset_[from] + port;
  if (edge_epoch_[slot] != round_) {
    edge_epoch_[slot] = round_;
    edge_sends_[slot] = 0;
  }
  const std::uint32_t load = ++edge_sends_[slot];
  if (options_.enforce_congest &&
      load > options_.max_messages_per_edge_per_round) {
    throw std::logic_error(
        "CONGEST violation: more than the per-edge message budget sent on "
        "one edge in one round");
  }
  stats_.max_edge_load = std::max(stats_.max_edge_load, load);
  const graph::NodeId target = nbrs[port];
  checker_.on_send(from, target, slot, payload, round_);
  next_inbox_[target].push_back(Message{from, tag, payload});
}

void Network::do_halt(graph::NodeId v) {
  checker_.on_halt(v);
  if (!halted_[v]) {
    halted_[v] = true;
    ++num_halted_;
  }
}

util::Rng& Network::draw_rng(graph::NodeId v) {
  checker_.on_rng_read(v, round_);
  return rngs_[v];
}

RunStats Network::run(Algorithm& algorithm, std::uint32_t max_rounds,
                      const RoundObserver& observer) {
  const graph::NodeId n = graph_->num_nodes();
  // Reset per-run state; RNG streams intentionally persist across runs.
  std::fill(halted_.begin(), halted_.end(), false);
  num_halted_ = 0;
  round_ = 0;
  stats_ = RunStats{};
  for (auto& box : inbox_) box.clear();
  for (auto& box : next_inbox_) box.clear();
  std::fill(edge_epoch_.begin(), edge_epoch_.end(), ~std::uint32_t{0});
  checker_.begin_run();

  for (graph::NodeId v = 0; v < n; ++v) {
    if (halted_[v]) continue;
    NodeContext ctx(*this, v);
    checker_.begin_callback(v);
    algorithm.on_start(ctx);
    checker_.end_callback();
  }

  while (num_halted_ < n && round_ < max_rounds) {
    if (algorithm.is_reactive()) {
      // Quiescence cut: nothing in flight means every further round is a
      // global no-op for a reactive algorithm.
      bool any_in_flight = false;
      for (const auto& box : next_inbox_) {
        if (!box.empty()) {
          any_in_flight = true;
          break;
        }
      }
      if (!any_in_flight) break;
    }
    // Deliver: next becomes current.
    std::swap(inbox_, next_inbox_);
    for (auto& box : next_inbox_) box.clear();
    ++round_;
    checker_.begin_round(round_);
    for (graph::NodeId v = 0; v < n; ++v) {
      if (halted_[v]) continue;
      NodeContext ctx(*this, v);
      checker_.begin_callback(v);
      checker_.on_consume(v, round_);
      algorithm.on_round(ctx, inbox_[v]);
      checker_.end_callback();
      stats_.messages += inbox_[v].size();
    }
    ++stats_.rounds;
    if (observer) observer(*this, round_);
  }
  stats_.payload_bits = stats_.messages * kBitsPerMessage;
  stats_.all_halted = (num_halted_ == n);
  checker_.end_run(stats_.rounds);
  return stats_;
}

graph::NodeId NodeContext::degree() const noexcept {
  return net_->graph_->degree(id_);
}

std::span<const graph::NodeId> NodeContext::neighbors() const noexcept {
  return net_->graph_->neighbors(id_);
}

std::uint32_t NodeContext::round() const noexcept { return net_->round_; }

graph::NodeId NodeContext::network_size() const noexcept {
  return net_->graph_->num_nodes();
}

void NodeContext::send(graph::NodeId port, std::uint32_t tag,
                       std::uint64_t payload) {
  net_->do_send(id_, port, tag, payload);
}

void NodeContext::broadcast(std::uint32_t tag, std::uint64_t payload) {
  const auto deg = degree();
  for (graph::NodeId port = 0; port < deg; ++port) send(port, tag, payload);
}

void NodeContext::halt() { net_->do_halt(id_); }

std::uint64_t NodeRandom::next() { return net_->draw_rng(id_).next(); }

double NodeRandom::uniform01() { return net_->draw_rng(id_).uniform01(); }

std::uint64_t NodeRandom::below(std::uint64_t bound) {
  return net_->draw_rng(id_).below(bound);
}

std::int64_t NodeRandom::range(std::int64_t lo, std::int64_t hi) {
  return net_->draw_rng(id_).range(lo, hi);
}

bool NodeRandom::bernoulli(double p) { return net_->draw_rng(id_).bernoulli(p); }

}  // namespace arbmis::sim
