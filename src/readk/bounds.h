// Closed-form bounds from Gavinsky, Lovett, Saks, Srinivasan, "A tail
// bound for read-k families of functions" (Random Structures & Algorithms
// 2015), as used by the paper (its Theorems 1.1 and 1.2), plus the
// independent-case references they are compared against.
#pragma once

#include <cstdint>

namespace arbmis::readk {

/// Theorem 1.1: for read-k indicators with Pr[Y_i = 1] = p,
/// Pr[Y_1 = ... = Y_n = 1] <= p^(n/k).
double conjunction_bound(double p, std::uint64_t n, std::uint64_t k) noexcept;

/// Independent-case reference: p^n.
double independent_conjunction(double p, std::uint64_t n) noexcept;

/// Theorem 1.2 form (1): Pr[Y <= (p - eps)·n] <= exp(-2·eps²·n/k),
/// where p is the mean of the p_i.
double lower_tail_form1(double eps, std::uint64_t n, std::uint64_t k) noexcept;

/// Theorem 1.2 form (2): Pr[Y <= (1-δ)·E[Y]] <= exp(-δ²·E[Y]/(2k)).
double lower_tail_form2(double delta, double expected_sum,
                        std::uint64_t k) noexcept;

/// Chernoff reference (k = 1 case of form (2)):
/// Pr[Y <= (1-δ)·E[Y]] <= exp(-δ²·E[Y]/2) for independent indicators.
double chernoff_lower_tail(double delta, double expected_sum) noexcept;

/// Upper tail, Pr[Y >= (p + eps)·n] <= exp(-2·eps²·n/k). Follows from
/// form (1) applied to the complement family {1 - Y_i}, which reads the
/// same base variables and is therefore read-k with mean 1 - p. (The
/// paper only needs the lower tail; the toolkit provides both.)
double upper_tail_form1(double eps, std::uint64_t n, std::uint64_t k) noexcept;

/// Paper Theorem 3.1 (Event 1): success probability lower bound
/// 1 - (1 - 1/max_degree)^(m / (2·α²)).
double event1_bound(std::uint64_t m, std::uint64_t max_degree,
                    std::uint64_t alpha) noexcept;

/// Paper Theorem 3.2 (Event 2): failure probability upper bound via the
/// read-ρ form-(1) tail with eps = 1/(2α):
/// exp(-2·(1/4α²)·m/ρ). (The theorem then plugs in the scale's |M| lower
/// bound to get 1/Δ⁴.)
double event2_failure_bound(std::uint64_t m, std::uint64_t rho,
                            std::uint64_t alpha) noexcept;

/// Paper Theorem 3.3 (Event 3): per-iteration elimination fraction
/// 1 / (8·α²·(32·α⁶ + 1)).
double event3_elimination_fraction(std::uint64_t alpha) noexcept;

}  // namespace arbmis::readk
