#include "readk/family.h"

#include <algorithm>
#include <stdexcept>

namespace arbmis::readk {

ReadKFamily::ReadKFamily(std::uint32_t num_base,
                         std::vector<std::vector<std::uint32_t>> deps,
                         Evaluator evaluator)
    : num_base_(num_base),
      deps_(std::move(deps)),
      evaluator_(std::move(evaluator)) {
  std::vector<std::uint32_t> usage(num_base_, 0);
  for (const auto& dep_list : deps_) {
    for (std::uint32_t i : dep_list) {
      if (i >= num_base_) {
        throw std::invalid_argument("ReadKFamily: dependency out of range");
      }
      ++usage[i];
    }
  }
  for (std::uint32_t count : usage) read_k_ = std::max(read_k_, count);
}

ReadKFamily independent_family(std::uint32_t n, double p) {
  std::vector<std::vector<std::uint32_t>> deps(n);
  for (std::uint32_t j = 0; j < n; ++j) deps[j] = {j};
  return ReadKFamily(
      n, std::move(deps),
      [p](std::uint32_t j, std::span<const double> base) {
        return base[j] < p;
      });
}

ReadKFamily shared_block_family(std::uint32_t n, std::uint32_t k, double p) {
  if (k == 0) throw std::invalid_argument("shared_block_family: k == 0");
  const std::uint32_t num_base = (n + k - 1) / k;
  std::vector<std::vector<std::uint32_t>> deps(n);
  for (std::uint32_t j = 0; j < n; ++j) deps[j] = {j / k};
  return ReadKFamily(
      num_base, std::move(deps),
      [p, k](std::uint32_t j, std::span<const double> base) {
        return base[j / k] < p;
      });
}

ReadKFamily child_max_family(const graph::Orientation& orientation,
                             std::span<const graph::NodeId> members) {
  std::vector<std::vector<std::uint32_t>> deps(members.size());
  std::vector<std::vector<graph::NodeId>> children(members.size());
  for (std::size_t j = 0; j < members.size(); ++j) {
    const graph::NodeId v = members[j];
    deps[j].push_back(v);
    for (graph::NodeId c : orientation.children(v)) {
      deps[j].push_back(c);
      children[j].push_back(c);
    }
  }
  return ReadKFamily(
      orientation.num_nodes(), std::move(deps),
      [members = std::vector<graph::NodeId>(members.begin(), members.end()),
       children = std::move(children)](std::uint32_t j,
                                       std::span<const double> base) {
        const double mine = base[members[j]];
        for (graph::NodeId c : children[j]) {
          if (base[c] > mine) return true;
        }
        return false;
      });
}

ReadKFamily parent_max_family(const graph::Orientation& orientation,
                              std::span<const graph::NodeId> members) {
  std::vector<std::vector<std::uint32_t>> deps(members.size());
  std::vector<std::vector<graph::NodeId>> parents(members.size());
  for (std::size_t j = 0; j < members.size(); ++j) {
    const graph::NodeId v = members[j];
    deps[j].push_back(v);
    for (graph::NodeId p : orientation.parents(v)) {
      deps[j].push_back(p);
      parents[j].push_back(p);
    }
  }
  return ReadKFamily(
      orientation.num_nodes(), std::move(deps),
      [members = std::vector<graph::NodeId>(members.begin(), members.end()),
       parents = std::move(parents)](std::uint32_t j,
                                     std::span<const double> base) {
        const double mine = base[members[j]];
        for (graph::NodeId p : parents[j]) {
          if (base[p] >= mine) return false;
        }
        return true;
      });
}

}  // namespace arbmis::readk
