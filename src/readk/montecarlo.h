// Monte-Carlo estimation engine for read-k families: conjunction
// probabilities (Theorem 1.1 experiments) and lower-tail probabilities of
// the indicator sum (Theorem 1.2 experiments), with Wilson confidence
// intervals so benches can report statistically honest comparisons
// against the closed-form bounds.
#pragma once

#include <cstdint>
#include <vector>

#include "readk/family.h"
#include "util/rng.h"
#include "util/stats.h"

namespace arbmis::readk {

/// Execution options for the Monte-Carlo estimators.
struct McOptions {
  /// 0 (default) = the legacy sequential sampler, bit-identical to the
  /// pre-parallelism behavior draw-for-draw. >= 1 = the block-parallel
  /// sampler: trials are partitioned into fixed-size blocks, each block
  /// draws from its own child stream of a single salt taken from the
  /// caller's rng, and block results are reduced in block order — so the
  /// estimate depends only on the seed, never on the worker count.
  std::uint32_t num_threads = 0;
  /// Trials per block in the parallel sampler. Part of the deterministic
  /// decomposition, deliberately independent of num_threads.
  std::uint64_t block_size = 4096;
};

struct ConjunctionEstimate {
  std::uint64_t trials = 0;
  std::uint64_t all_ones = 0;
  double probability = 0.0;      ///< P(Y_1 = ... = Y_n = 1)
  util::Interval ci;             ///< 95% Wilson interval
  double mean_indicator = 0.0;   ///< average P(Y_j = 1), pooled
};

/// Estimates P(all indicators are 1) over `trials` fresh base draws.
ConjunctionEstimate estimate_conjunction(const ReadKFamily& family,
                                         std::uint64_t trials,
                                         util::Rng& rng,
                                         McOptions options = {});

struct TailEstimate {
  std::uint64_t trials = 0;
  double expected_sum = 0.0;  ///< empirical E[Y]
  struct Point {
    double delta = 0.0;        ///< tail at (1-delta)·E[Y]
    double threshold = 0.0;
    double probability = 0.0;  ///< empirical P(Y <= threshold)
    util::Interval ci;
  };
  std::vector<Point> points;
  util::RunningStats sum_stats;  ///< distribution of Y across trials
};

/// Estimates the lower tail P(Y <= (1-delta)·E[Y]) for each delta. Uses a
/// first pass of `trials` draws to estimate E[Y] and a second independent
/// pass for the tail itself.
TailEstimate estimate_lower_tail(const ReadKFamily& family,
                                 std::uint64_t trials,
                                 std::span<const double> deltas,
                                 util::Rng& rng,
                                 McOptions options = {});

}  // namespace arbmis::readk
