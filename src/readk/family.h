// Executable read-k families.
//
// A read-k family (paper §1.1) is a set of indicator variables
// Y_1, ..., Y_n, each a boolean function of a subset P_j of independent
// base variables X_1, ..., X_m, such that every X_i appears in at most k
// of the P_j. This module represents such families concretely (base
// variables are iid Uniform[0,1) draws — exactly the priorities of the
// paper's algorithm), computes their true read value from the dependency
// lists, and provides the constructions the experiments use:
//
//   * independent_family        — read-1 control,
//   * shared_block_family       — k indicators per base variable; the
//     extremal family for which Theorem 1.1's bound p^(n/k) is exactly
//     tight (all indicators in a block are equal),
//   * child_max_family          — Y_v = [x_v < max over v's children] on
//     an oriented graph: the paper's Event (1) structure (Figure 1A),
//   * parent_max_family         — Y_v = [x_v > max over v's parents]: the
//     Event (2) structure (Figure 1B).
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "graph/orientation.h"

namespace arbmis::readk {

class ReadKFamily {
 public:
  /// Evaluator: given the indicator index and the full base vector,
  /// return the indicator's value. Must only read base[i] for i in
  /// deps(j) — verified for the built-in constructions by tests.
  using Evaluator =
      std::function<bool(std::uint32_t j, std::span<const double> base)>;

  ReadKFamily(std::uint32_t num_base,
              std::vector<std::vector<std::uint32_t>> deps,
              Evaluator evaluator);

  std::uint32_t num_base() const noexcept { return num_base_; }
  std::uint32_t num_indicators() const noexcept {
    return static_cast<std::uint32_t>(deps_.size());
  }
  std::span<const std::uint32_t> deps(std::uint32_t j) const noexcept {
    return deps_[j];
  }

  /// The actual k: max number of indicators any base variable feeds.
  std::uint32_t read_k() const noexcept { return read_k_; }

  bool evaluate(std::uint32_t j, std::span<const double> base) const {
    return evaluator_(j, base);
  }

 private:
  std::uint32_t num_base_;
  std::vector<std::vector<std::uint32_t>> deps_;
  Evaluator evaluator_;
  std::uint32_t read_k_ = 0;
};

/// n independent indicators Y_j = [x_j < p]. read_k() == 1.
ReadKFamily independent_family(std::uint32_t n, double p);

/// n indicators in blocks of k sharing one base variable:
/// Y_j = [x_{j/k} < p]. read_k() == k (last block may be smaller). The
/// conjunction probability is exactly p^(ceil(n/k)).
ReadKFamily shared_block_family(std::uint32_t n, std::uint32_t k, double p);

/// One indicator per node of `members`: Y_v = [x_v < max_{c in
/// children(v)} x_c] (nodes without children give Y_v = 0). Base variables
/// are all node priorities. This is the event whose conjunction Theorem
/// 3.1 bounds.
ReadKFamily child_max_family(const graph::Orientation& orientation,
                             std::span<const graph::NodeId> members);

/// One indicator per node of `members`: Y_v = [x_v > max_{p in
/// parents(v)} x_p] (no parents -> Y_v = 1). The sum of these is the X of
/// Theorem 3.2.
ReadKFamily parent_max_family(const graph::Orientation& orientation,
                              std::span<const graph::NodeId> members);

}  // namespace arbmis::readk
