#include "readk/bounds.h"

#include <algorithm>
#include <cmath>

namespace arbmis::readk {

double conjunction_bound(double p, std::uint64_t n, std::uint64_t k) noexcept {
  if (k == 0) return 1.0;
  p = std::clamp(p, 0.0, 1.0);
  return std::pow(p, static_cast<double>(n) / static_cast<double>(k));
}

double independent_conjunction(double p, std::uint64_t n) noexcept {
  p = std::clamp(p, 0.0, 1.0);
  return std::pow(p, static_cast<double>(n));
}

double lower_tail_form1(double eps, std::uint64_t n, std::uint64_t k) noexcept {
  if (k == 0) return 1.0;
  return std::exp(-2.0 * eps * eps * static_cast<double>(n) /
                  static_cast<double>(k));
}

double lower_tail_form2(double delta, double expected_sum,
                        std::uint64_t k) noexcept {
  if (k == 0) return 1.0;
  return std::exp(-delta * delta * expected_sum /
                  (2.0 * static_cast<double>(k)));
}

double chernoff_lower_tail(double delta, double expected_sum) noexcept {
  return std::exp(-delta * delta * expected_sum / 2.0);
}

double upper_tail_form1(double eps, std::uint64_t n, std::uint64_t k) noexcept {
  return lower_tail_form1(eps, n, k);  // complement-family symmetry
}

double event1_bound(std::uint64_t m, std::uint64_t max_degree,
                    std::uint64_t alpha) noexcept {
  if (max_degree == 0 || alpha == 0) return 1.0;
  const double base = 1.0 - 1.0 / static_cast<double>(max_degree);
  const double exponent = static_cast<double>(m) /
                          (2.0 * static_cast<double>(alpha) *
                           static_cast<double>(alpha));
  return 1.0 - std::pow(base, exponent);
}

double event2_failure_bound(std::uint64_t m, std::uint64_t rho,
                            std::uint64_t alpha) noexcept {
  if (rho == 0 || alpha == 0) return 1.0;
  const double a2 = static_cast<double>(alpha) * static_cast<double>(alpha);
  return std::exp(-2.0 * (1.0 / (4.0 * a2)) * static_cast<double>(m) /
                  static_cast<double>(rho));
}

double event3_elimination_fraction(std::uint64_t alpha) noexcept {
  const double a = static_cast<double>(std::max<std::uint64_t>(alpha, 1));
  double a6 = 1.0;
  for (int i = 0; i < 6; ++i) a6 *= a;
  return 1.0 / (8.0 * a * a * (32.0 * a6 + 1.0));
}

}  // namespace arbmis::readk
