#include "readk/events.h"

#include <algorithm>
#include <cmath>

#include "readk/bounds.h"

namespace arbmis::readk {

namespace {

void draw_priorities(std::vector<double>& r, util::Rng& rng) {
  for (double& x : r) x = rng.uniform01();
}

std::uint64_t max_degree_of(graph::GraphView g,
                            std::span<const graph::NodeId> members) {
  std::uint64_t max_degree = 0;
  for (graph::NodeId v : members) {
    max_degree = std::max<std::uint64_t>(max_degree, g.degree(v));
  }
  return max_degree;
}

}  // namespace

EventEstimate estimate_event1(graph::GraphView g,
                              const graph::Orientation& orientation,
                              std::span<const graph::NodeId> members,
                              std::uint64_t alpha, std::uint64_t trials,
                              util::Rng& rng) {
  EventEstimate estimate;
  estimate.trials = trials;
  estimate.paper_bound =
      event1_bound(members.size(), max_degree_of(g, members), alpha);

  std::vector<double> r(g.num_nodes());
  double metric_total = 0.0;
  for (std::uint64_t t = 0; t < trials; ++t) {
    draw_priorities(r, rng);
    std::uint64_t winners = 0;
    for (graph::NodeId v : members) {
      bool beats_children = true;
      for (graph::NodeId c : orientation.children(v)) {
        if (r[c] >= r[v]) {
          beats_children = false;
          break;
        }
      }
      if (beats_children && !orientation.children(v).empty()) ++winners;
    }
    estimate.successes += (winners > 0);
    metric_total += static_cast<double>(winners);
  }
  estimate.probability =
      trials > 0 ? static_cast<double>(estimate.successes) /
                       static_cast<double>(trials)
                 : 0.0;
  estimate.ci = util::wilson_interval(estimate.successes, trials);
  estimate.mean_metric =
      trials > 0 ? metric_total / static_cast<double>(trials) : 0.0;
  return estimate;
}

EventEstimate estimate_event2(graph::GraphView g,
                              const graph::Orientation& orientation,
                              std::span<const graph::NodeId> members,
                              std::uint64_t alpha, std::uint64_t trials,
                              util::Rng& rng) {
  EventEstimate estimate;
  estimate.trials = trials;
  // All nodes are competitive in this kernel, so the read parameter is
  // the largest degree (a priority can influence at most that many
  // indicators); the theorem uses rho_k there.
  estimate.paper_bound =
      1.0 - event2_failure_bound(members.size(), max_degree_of(g, members),
                                 alpha);

  const double target = static_cast<double>(members.size()) /
                        (2.0 * static_cast<double>(std::max<std::uint64_t>(
                                   alpha, 1)));
  std::vector<double> r(g.num_nodes());
  double metric_total = 0.0;
  for (std::uint64_t t = 0; t < trials; ++t) {
    draw_priorities(r, rng);
    std::uint64_t beat_parents = 0;
    for (graph::NodeId v : members) {
      bool beats = true;
      for (graph::NodeId p : orientation.parents(v)) {
        if (r[p] >= r[v]) {
          beats = false;
          break;
        }
      }
      beat_parents += beats;
    }
    estimate.successes += (static_cast<double>(beat_parents) > target);
    metric_total += static_cast<double>(beat_parents) /
                    std::max<double>(static_cast<double>(members.size()), 1.0);
  }
  estimate.probability =
      trials > 0 ? static_cast<double>(estimate.successes) /
                       static_cast<double>(trials)
                 : 0.0;
  estimate.ci = util::wilson_interval(estimate.successes, trials);
  estimate.mean_metric =
      trials > 0 ? metric_total / static_cast<double>(trials) : 0.0;
  return estimate;
}

EventEstimate estimate_event3(graph::GraphView g,
                              std::span<const graph::NodeId> members,
                              std::uint64_t alpha, std::uint64_t trials,
                              util::Rng& rng) {
  EventEstimate estimate;
  estimate.trials = trials;
  const double fraction = event3_elimination_fraction(alpha);
  estimate.paper_bound = fraction;

  std::vector<double> r(g.num_nodes());
  double metric_total = 0.0;
  for (std::uint64_t t = 0; t < trials; ++t) {
    draw_priorities(r, rng);
    // One Métivier iteration on the whole graph: v wins iff r(v) beats
    // every neighbor.
    std::vector<std::uint8_t> wins(g.num_nodes(), 0);
    for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
      bool winner = true;
      for (graph::NodeId w : g.neighbors(v)) {
        if (r[w] >= r[v]) {
          winner = false;
          break;
        }
      }
      wins[v] = winner ? 1 : 0;
    }
    std::uint64_t eliminated = 0;
    for (graph::NodeId v : members) {
      bool gone = wins[v] != 0;
      if (!gone) {
        for (graph::NodeId w : g.neighbors(v)) {
          if (wins[w]) {
            gone = true;
            break;
          }
        }
      }
      eliminated += gone;
    }
    const double eliminated_fraction =
        static_cast<double>(eliminated) /
        std::max<double>(static_cast<double>(members.size()), 1.0);
    estimate.successes += (eliminated_fraction >= fraction);
    metric_total += eliminated_fraction;
  }
  estimate.probability =
      trials > 0 ? static_cast<double>(estimate.successes) /
                       static_cast<double>(trials)
                 : 0.0;
  estimate.ci = util::wilson_interval(estimate.successes, trials);
  estimate.mean_metric =
      trials > 0 ? metric_total / static_cast<double>(trials) : 0.0;
  return estimate;
}

std::vector<graph::NodeId> nodes_with_children(
    const graph::Orientation& orientation) {
  std::vector<graph::NodeId> out;
  for (graph::NodeId v = 0; v < orientation.num_nodes(); ++v) {
    if (!orientation.children(v).empty()) out.push_back(v);
  }
  return out;
}

std::vector<graph::NodeId> nodes_with_parents(
    const graph::Orientation& orientation) {
  std::vector<graph::NodeId> out;
  for (graph::NodeId v = 0; v < orientation.num_nodes(); ++v) {
    if (!orientation.parents(v).empty()) out.push_back(v);
  }
  return out;
}

}  // namespace arbmis::readk
