// Monte-Carlo kernels for the paper's three key probabilistic events
// (§3.1, Figure 1), run on real oriented graphs. Each kernel simulates one
// iteration's priority draws centrally (the events are statements about a
// single iteration, so no message passing is needed) and reports the
// empirical event probability next to the paper's bound.
//
//   Event (1) / Theorem 3.1 (Fig 1A): some node of M draws a priority
//     above all of its children.
//   Event (2) / Theorem 3.2 (Fig 1B): more than |M|/(2α) nodes of M draw
//     priorities above all of their parents.
//   Event (3) / Theorem 3.3 (Fig 1C): at least an
//     1/(8α²(32α⁶+1)) fraction of M is eliminated in one Métivier
//     iteration (the node or a neighbor wins).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.h"
#include "graph/orientation.h"
#include "util/rng.h"
#include "util/stats.h"

namespace arbmis::readk {

struct EventEstimate {
  std::uint64_t trials = 0;
  std::uint64_t successes = 0;
  double probability = 0.0;
  util::Interval ci;
  double paper_bound = 0.0;  ///< the theorem's bound on this probability
  /// Mean of the per-trial measured quantity (beaten-children count /
  /// parent-beating fraction / elimination fraction).
  double mean_metric = 0.0;
};

/// Event (1): P(∃ x in M : r(x) > max over children). paper_bound is the
/// Theorem 3.1 lower bound computed from (|M|, max degree in M, α).
EventEstimate estimate_event1(graph::GraphView g,
                              const graph::Orientation& orientation,
                              std::span<const graph::NodeId> members,
                              std::uint64_t alpha, std::uint64_t trials,
                              util::Rng& rng);

/// Event (2): P(#{u in M : r(u) > all parents} > |M|/(2α)). paper_bound is
/// the Theorem 3.2 style failure bound (reported as success bound
/// 1 - exp(...)), computed with rho = max degree (all nodes competitive).
EventEstimate estimate_event2(graph::GraphView g,
                              const graph::Orientation& orientation,
                              std::span<const graph::NodeId> members,
                              std::uint64_t alpha, std::uint64_t trials,
                              util::Rng& rng);

/// Event (3): P(eliminated fraction of M >= 1/(8α²(32α⁶+1))) after one
/// full Métivier iteration on the whole graph. paper_bound reports the
/// Theorem 3.3 target fraction via mean_metric comparison and the success
/// probability against 1 - 1/Δ³.
EventEstimate estimate_event3(graph::GraphView g,
                              std::span<const graph::NodeId> members,
                              std::uint64_t alpha, std::uint64_t trials,
                              util::Rng& rng);

/// Helper for benches: the members sets the theorems quantify over —
/// nodes with at least one child (event 1/3) or at least one parent
/// (event 2).
std::vector<graph::NodeId> nodes_with_children(
    const graph::Orientation& orientation);
std::vector<graph::NodeId> nodes_with_parents(
    const graph::Orientation& orientation);

}  // namespace arbmis::readk
