#include "readk/montecarlo.h"

#include <algorithm>

#include "sim/thread_pool.h"

namespace arbmis::readk {

namespace {

void draw_base(std::vector<double>& base, util::Rng& rng) {
  for (double& x : base) x = rng.uniform01();
}

std::uint64_t num_blocks_for(std::uint64_t trials, std::uint64_t block_size) {
  return (trials + block_size - 1) / block_size;
}

/// Runs `body(block, block_rng, begin, end)` for every trial block on the
/// pool, with a deterministic strided block-to-worker assignment. Each
/// block draws from child stream `stream_offset + block` of `block_base`,
/// so the sample grid is a pure function of the salt — never of the
/// worker count or the OS schedule.
template <typename Body>
void run_blocks(sim::ThreadPool& pool, const util::Rng& block_base,
                std::uint64_t stream_offset, std::uint64_t trials,
                std::uint64_t block_size, const Body& body) {
  const std::uint64_t blocks = num_blocks_for(trials, block_size);
  pool.run([&](std::uint32_t w) {
    for (std::uint64_t b = w; b < blocks; b += pool.num_workers()) {
      util::Rng block_rng = block_base.child(stream_offset + b);
      const std::uint64_t begin = b * block_size;
      const std::uint64_t end = std::min(trials, begin + block_size);
      body(b, block_rng, begin, end);
    }
  });
}

}  // namespace

ConjunctionEstimate estimate_conjunction(const ReadKFamily& family,
                                         std::uint64_t trials,
                                         util::Rng& rng,
                                         McOptions options) {
  ConjunctionEstimate estimate;
  estimate.trials = trials;
  std::uint64_t indicator_ones = 0;

  if (options.num_threads == 0) {
    // Legacy sequential sampler: consumes rng draw-for-draw exactly as
    // before the parallel path existed, preserving all pinned results.
    std::vector<double> base(family.num_base());
    for (std::uint64_t t = 0; t < trials; ++t) {
      draw_base(base, rng);
      bool all = true;
      for (std::uint32_t j = 0; j < family.num_indicators(); ++j) {
        const bool y = family.evaluate(j, base);
        indicator_ones += y;
        all = all && y;
        // No early exit: indicator_ones feeds mean_indicator.
      }
      estimate.all_ones += all;
    }
  } else {
    const std::uint64_t block_size = std::max<std::uint64_t>(
        options.block_size, 1);
    // One salt from the caller's stream seeds the whole block grid.
    const util::Rng block_base(rng.next());
    struct BlockResult {
      std::uint64_t all_ones = 0;
      std::uint64_t indicator_ones = 0;
    };
    std::vector<BlockResult> blocks(num_blocks_for(trials, block_size));
    sim::ThreadPool pool(options.num_threads);
    run_blocks(pool, block_base, 0, trials, block_size,
               [&](std::uint64_t b, util::Rng& block_rng, std::uint64_t begin,
                   std::uint64_t end) {
                 std::vector<double> base(family.num_base());
                 for (std::uint64_t t = begin; t < end; ++t) {
                   draw_base(base, block_rng);
                   bool all = true;
                   for (std::uint32_t j = 0; j < family.num_indicators();
                        ++j) {
                     const bool y = family.evaluate(j, base);
                     blocks[b].indicator_ones += y;
                     all = all && y;
                   }
                   blocks[b].all_ones += all;
                 }
               });
    // Integer sums are exact and commutative; order is irrelevant here,
    // but reduce in block order anyway for uniformity with the tail path.
    for (const BlockResult& block : blocks) {
      estimate.all_ones += block.all_ones;
      indicator_ones += block.indicator_ones;
    }
  }

  estimate.probability = trials > 0
                             ? static_cast<double>(estimate.all_ones) /
                                   static_cast<double>(trials)
                             : 0.0;
  estimate.ci = util::wilson_interval(estimate.all_ones, trials);
  const std::uint64_t total =
      trials * static_cast<std::uint64_t>(family.num_indicators());
  estimate.mean_indicator =
      total > 0 ? static_cast<double>(indicator_ones) /
                      static_cast<double>(total)
                : 0.0;
  return estimate;
}

TailEstimate estimate_lower_tail(const ReadKFamily& family,
                                 std::uint64_t trials,
                                 std::span<const double> deltas,
                                 util::Rng& rng,
                                 McOptions options) {
  TailEstimate estimate;
  estimate.trials = trials;

  const auto sum_of = [&](const std::vector<double>& base) {
    std::uint32_t sum = 0;
    for (std::uint32_t j = 0; j < family.num_indicators(); ++j) {
      sum += family.evaluate(j, base);
    }
    return sum;
  };

  if (options.num_threads == 0) {
    // Legacy sequential sampler (see estimate_conjunction).
    std::vector<double> base(family.num_base());

    // Pass 1: estimate E[Y].
    double sum_total = 0.0;
    for (std::uint64_t t = 0; t < trials; ++t) {
      draw_base(base, rng);
      sum_total += sum_of(base);
    }
    estimate.expected_sum =
        trials > 0 ? sum_total / static_cast<double>(trials) : 0.0;

    // Pass 2: tail counts at each threshold.
    estimate.points.reserve(deltas.size());
    for (double delta : deltas) {
      TailEstimate::Point point;
      point.delta = delta;
      point.threshold = (1.0 - delta) * estimate.expected_sum;
      estimate.points.push_back(point);
    }
    std::vector<std::uint64_t> hits(deltas.size(), 0);
    for (std::uint64_t t = 0; t < trials; ++t) {
      draw_base(base, rng);
      const std::uint32_t sum = sum_of(base);
      estimate.sum_stats.add(static_cast<double>(sum));
      for (std::size_t i = 0; i < estimate.points.size(); ++i) {
        if (static_cast<double>(sum) <= estimate.points[i].threshold) {
          ++hits[i];
        }
      }
    }
    for (std::size_t i = 0; i < estimate.points.size(); ++i) {
      estimate.points[i].probability =
          trials > 0
              ? static_cast<double>(hits[i]) / static_cast<double>(trials)
              : 0.0;
      estimate.points[i].ci = util::wilson_interval(hits[i], trials);
    }
    return estimate;
  }

  const std::uint64_t block_size =
      std::max<std::uint64_t>(options.block_size, 1);
  const std::uint64_t blocks = num_blocks_for(trials, block_size);
  const util::Rng block_base(rng.next());
  sim::ThreadPool pool(options.num_threads);

  // Pass 1: per-block sums reduced in block order (double addition is not
  // associative, so the fixed order is what makes the estimate a pure
  // function of the seed).
  std::vector<double> block_sum(blocks, 0.0);
  run_blocks(pool, block_base, 0, trials, block_size,
             [&](std::uint64_t b, util::Rng& block_rng, std::uint64_t begin,
                 std::uint64_t end) {
               std::vector<double> base(family.num_base());
               for (std::uint64_t t = begin; t < end; ++t) {
                 draw_base(base, block_rng);
                 block_sum[b] += sum_of(base);
               }
             });
  double sum_total = 0.0;
  for (const double s : block_sum) sum_total += s;
  estimate.expected_sum =
      trials > 0 ? sum_total / static_cast<double>(trials) : 0.0;

  estimate.points.reserve(deltas.size());
  for (double delta : deltas) {
    TailEstimate::Point point;
    point.delta = delta;
    point.threshold = (1.0 - delta) * estimate.expected_sum;
    estimate.points.push_back(point);
  }

  // Pass 2: independent streams (offset by `blocks`), per-block tail hits
  // and Welford partials, merged in block order.
  std::vector<std::vector<std::uint64_t>> block_hits(
      blocks, std::vector<std::uint64_t>(deltas.size(), 0));
  std::vector<util::RunningStats> block_stats(blocks);
  run_blocks(pool, block_base, blocks, trials, block_size,
             [&](std::uint64_t b, util::Rng& block_rng, std::uint64_t begin,
                 std::uint64_t end) {
               std::vector<double> base(family.num_base());
               for (std::uint64_t t = begin; t < end; ++t) {
                 draw_base(base, block_rng);
                 const std::uint32_t sum = sum_of(base);
                 block_stats[b].add(static_cast<double>(sum));
                 for (std::size_t i = 0; i < estimate.points.size(); ++i) {
                   if (static_cast<double>(sum) <=
                       estimate.points[i].threshold) {
                     ++block_hits[b][i];
                   }
                 }
               }
             });
  std::vector<std::uint64_t> hits(deltas.size(), 0);
  for (std::uint64_t b = 0; b < blocks; ++b) {
    estimate.sum_stats.merge(block_stats[b]);
    for (std::size_t i = 0; i < hits.size(); ++i) hits[i] += block_hits[b][i];
  }
  for (std::size_t i = 0; i < estimate.points.size(); ++i) {
    estimate.points[i].probability =
        trials > 0
            ? static_cast<double>(hits[i]) / static_cast<double>(trials)
            : 0.0;
    estimate.points[i].ci = util::wilson_interval(hits[i], trials);
  }
  return estimate;
}

}  // namespace arbmis::readk
