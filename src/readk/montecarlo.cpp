#include "readk/montecarlo.h"

namespace arbmis::readk {

namespace {
void draw_base(std::vector<double>& base, util::Rng& rng) {
  for (double& x : base) x = rng.uniform01();
}
}  // namespace

ConjunctionEstimate estimate_conjunction(const ReadKFamily& family,
                                         std::uint64_t trials,
                                         util::Rng& rng) {
  ConjunctionEstimate estimate;
  estimate.trials = trials;
  std::vector<double> base(family.num_base());
  std::uint64_t indicator_ones = 0;
  for (std::uint64_t t = 0; t < trials; ++t) {
    draw_base(base, rng);
    bool all = true;
    for (std::uint32_t j = 0; j < family.num_indicators(); ++j) {
      const bool y = family.evaluate(j, base);
      indicator_ones += y;
      all = all && y;
      // No early exit: indicator_ones feeds mean_indicator.
    }
    estimate.all_ones += all;
  }
  estimate.probability = trials > 0
                             ? static_cast<double>(estimate.all_ones) /
                                   static_cast<double>(trials)
                             : 0.0;
  estimate.ci = util::wilson_interval(estimate.all_ones, trials);
  const std::uint64_t total =
      trials * static_cast<std::uint64_t>(family.num_indicators());
  estimate.mean_indicator =
      total > 0 ? static_cast<double>(indicator_ones) /
                      static_cast<double>(total)
                : 0.0;
  return estimate;
}

TailEstimate estimate_lower_tail(const ReadKFamily& family,
                                 std::uint64_t trials,
                                 std::span<const double> deltas,
                                 util::Rng& rng) {
  TailEstimate estimate;
  estimate.trials = trials;
  std::vector<double> base(family.num_base());

  // Pass 1: estimate E[Y].
  double sum_total = 0.0;
  for (std::uint64_t t = 0; t < trials; ++t) {
    draw_base(base, rng);
    std::uint32_t sum = 0;
    for (std::uint32_t j = 0; j < family.num_indicators(); ++j) {
      sum += family.evaluate(j, base);
    }
    sum_total += sum;
  }
  estimate.expected_sum =
      trials > 0 ? sum_total / static_cast<double>(trials) : 0.0;

  // Pass 2: tail counts at each threshold.
  estimate.points.reserve(deltas.size());
  for (double delta : deltas) {
    TailEstimate::Point point;
    point.delta = delta;
    point.threshold = (1.0 - delta) * estimate.expected_sum;
    estimate.points.push_back(point);
  }
  std::vector<std::uint64_t> hits(deltas.size(), 0);
  for (std::uint64_t t = 0; t < trials; ++t) {
    draw_base(base, rng);
    std::uint32_t sum = 0;
    for (std::uint32_t j = 0; j < family.num_indicators(); ++j) {
      sum += family.evaluate(j, base);
    }
    estimate.sum_stats.add(static_cast<double>(sum));
    for (std::size_t i = 0; i < estimate.points.size(); ++i) {
      if (static_cast<double>(sum) <= estimate.points[i].threshold) {
        ++hits[i];
      }
    }
  }
  for (std::size_t i = 0; i < estimate.points.size(); ++i) {
    estimate.points[i].probability =
        trials > 0
            ? static_cast<double>(hits[i]) / static_cast<double>(trials)
            : 0.0;
    estimate.points[i].ci = util::wilson_interval(hits[i], trials);
  }
  return estimate;
}

}  // namespace arbmis::readk
