#include "core/shattering.h"

#include <algorithm>
#include <cmath>

#include "graph/properties.h"

namespace arbmis::core {

ShatteringStats shattering_stats(graph::GraphView g,
                                 std::span<const std::uint8_t> mask) {
  ShatteringStats stats;
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    stats.set_size += mask[v] ? 1 : 0;
  }
  const graph::Components comps = graph::induced_components(g, mask);
  stats.num_components = comps.count;
  stats.component_sizes = comps.sizes;
  std::sort(stats.component_sizes.begin(), stats.component_sizes.end());
  if (!stats.component_sizes.empty()) {
    stats.largest_component = stats.component_sizes.back();
    stats.mean_component = static_cast<double>(stats.set_size) /
                           static_cast<double>(stats.num_components);
  }
  const double n = std::max<double>(g.num_nodes(), 2.0);
  const double delta = std::max<double>(g.max_degree(), 2.0);
  stats.log_delta_n = std::log(n) / std::log(delta);
  return stats;
}

}  // namespace arbmis::core
