#include "core/arb_mis.h"

#include <stdexcept>

#include "graph/subgraph.h"
#include "obs/sink.h"
#include "mis/degree_reduction.h"
#include "mis/linial.h"
#include "mis/metivier.h"
#include "mis/slow_local.h"
#include "mis/gather_solve.h"
#include "mis/sparse_mis.h"

namespace arbmis::core {

namespace {

using mis::MisState;

/// Runs `finisher` on a subgraph and returns its labeling.
mis::MisResult run_finisher(graph::GraphView sub, Finisher finisher,
                            graph::NodeId alpha, std::uint64_t seed) {
  switch (finisher) {
    case Finisher::kMetivier:
      return mis::MetivierMis::run(sub, seed);
    case Finisher::kLinial:
      return mis::LinialMis::run(sub, sub.max_degree(), seed);
    case Finisher::kElection:
      return mis::ElectionMis::run(sub, seed);
    case Finisher::kSparse: {
      mis::SparseMisResult sparse =
          mis::sparse_mis(sub, {.alpha = alpha}, seed);
      return std::move(sparse.mis);
    }
    case Finisher::kGather:
      return mis::GatherSolveMis::run(sub, seed);
  }
  throw std::logic_error("run_finisher: unknown finisher");
}

/// Runs a finisher stage on the nodes where stage_mask is set and the
/// global state is still undecided; merges the results and flushes
/// coverage. Returns the stage's run stats (+1 flush round).
sim::RunStats run_stage(graph::GraphView g,
                        std::vector<MisState>& state,
                        const std::vector<std::uint8_t>& stage_mask,
                        Finisher finisher, graph::NodeId alpha,
                        std::uint64_t seed) {
  std::vector<std::uint8_t> eligible(g.num_nodes(), 0);
  bool any = false;
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    eligible[v] = (stage_mask[v] != 0 && state[v] == MisState::kUndecided);
    any = any || eligible[v];
  }
  if (!any) return {};

  const graph::Subgraph sub = graph::induced_subgraph(g, eligible);
  mis::MisResult stage = run_finisher(sub.graph, finisher, alpha, seed);
  for (graph::NodeId local = 0; local < sub.graph.num_nodes(); ++local) {
    const graph::NodeId v = sub.original(local);
    if (stage.state[local] == MisState::kInMis) {
      state[v] = MisState::kInMis;
    } else if (stage.state[local] == MisState::kCovered) {
      state[v] = MisState::kCovered;
    }
  }
  mis::finalize_partial(g, state);
  sim::RunStats stats = stage.stats;
  stats.rounds += 1;  // the coverage flush between stages
  return stats;
}

/// Pipeline-stage transition event (index = stage position, set_size =
/// nodes the stage ran on). No-op without an attached sink.
void emit_phase(std::string_view name, std::uint64_t index,
                std::uint64_t set_size, const sim::RunStats& stats) {
  obs::emit(obs::make_event(obs::EventKind::kPhase, /*round=*/0, name, index,
                            set_size, stats.rounds, stats.messages));
}

}  // namespace

ArbMisResult arb_mis(graph::GraphView g, const ArbMisOptions& options,
                     std::uint64_t seed) {
  ArbMisResult result;
  result.mis.state.assign(g.num_nodes(), MisState::kUndecided);
  result.shatter_outcome.assign(g.num_nodes(), ArbOutcome::kActive);

  // Stage 0 (optional): degree reduction.
  std::vector<std::uint8_t> residual(g.num_nodes(), 1);
  if (options.degree_reduction) {
    const std::uint32_t budget = mis::degree_reduction_budget(
        g.num_nodes(), options.degree_reduction_c);
    mis::DegreeReductionResult reduction =
        mis::degree_reduction(g, budget, seed);
    result.reduction_stats = reduction.stats;
    result.mis.state = std::move(reduction.state);
    residual = std::move(reduction.residual_mask);
    emit_phase("degree_reduction", 0, g.num_nodes(), result.reduction_stats);
  }

  // Stage 1: BoundedArbIndependentSet on the residual graph.
  const graph::Subgraph shatter_sub = graph::induced_subgraph(g, residual);
  result.params =
      options.paper_faithful_params
          ? Params::paper_faithful(options.alpha,
                                   shatter_sub.graph.max_degree(),
                                   options.paper_p)
          : Params::practical(options.alpha, shatter_sub.graph.max_degree(),
                              options.tuning);
  BoundedArbIndependentSet::Result shatter = [&] {
    if (!options.audit_invariant) {
      return BoundedArbIndependentSet::run(shatter_sub.graph, result.params,
                                           seed + 1);
    }
    BoundedArbIndependentSet algorithm(shatter_sub.graph, result.params);
    InvariantAuditor auditor(shatter_sub.graph, algorithm);
    sim::Network net(shatter_sub.graph, seed + 1);
    BoundedArbIndependentSet::Result audited;
    audited.stats =
        net.run(algorithm, result.params.total_rounds(), auditor.observer());
    audited.outcome = algorithm.outcomes();
    audited.params = result.params;
    audited.scale_stats = algorithm.scale_stats();
    result.invariant_audits = auditor.audits();
    result.invariant_held = auditor.all_hold();
    return audited;
  }();
  result.shatter_stats = shatter.stats;

  std::vector<std::uint8_t> bad_mask(g.num_nodes(), 0);
  std::vector<std::uint8_t> remaining_mask(g.num_nodes(), 0);
  for (graph::NodeId local = 0; local < shatter_sub.graph.num_nodes();
       ++local) {
    const graph::NodeId v = shatter_sub.original(local);
    result.shatter_outcome[v] = shatter.outcome[local];
    switch (shatter.outcome[local]) {
      case ArbOutcome::kInMis:
        result.mis.state[v] = MisState::kInMis;
        break;
      case ArbOutcome::kCovered:
        result.mis.state[v] = MisState::kCovered;
        break;
      case ArbOutcome::kBad:
        bad_mask[v] = 1;
        break;
      case ArbOutcome::kRemaining:
        remaining_mask[v] = 1;
        break;
      case ArbOutcome::kActive:
        throw std::logic_error("arb_mis: shattering left an active node");
    }
  }
  mis::finalize_partial(g, result.mis.state);
  result.shatter_stats.rounds += 1;  // flush
  result.bad_components = shattering_stats(g, bad_mask);
  for (std::uint8_t b : bad_mask) result.bad_size += b;
  if (obs::telemetry_attached()) {
    emit_phase("shatter", 1, shatter_sub.graph.num_nodes(),
               result.shatter_stats);
    for (const BoundedArbIndependentSet::ScaleStats& s : shatter.scale_stats) {
      obs::emit(obs::make_event(obs::EventKind::kScale, /*round=*/0, {},
                                s.scale, s.joined, s.covered, s.bad,
                                s.active_after));
    }
  }

  // Stage 2: split VIB into Vlo / Vhi by residual degree against the
  // scale-Θ cut (paper §3.3), measured inside the remaining set.
  const std::uint64_t cut = result.params.residual_degree_cut();
  std::vector<std::uint8_t> vlo(g.num_nodes(), 0);
  std::vector<std::uint8_t> vhi(g.num_nodes(), 0);
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    if (!remaining_mask[v]) continue;
    std::uint64_t residual_degree = 0;
    for (graph::NodeId w : g.neighbors(v)) residual_degree += remaining_mask[w];
    if (residual_degree <= cut) {
      vlo[v] = 1;
    } else {
      vhi[v] = 1;
    }
  }
  for (std::uint8_t b : vlo) result.vlo_size += b;
  for (std::uint8_t b : vhi) result.vhi_size += b;
  if (obs::telemetry_attached()) {
    obs::emit(obs::make_event(obs::EventKind::kShatter, /*round=*/0, {},
                              result.bad_size,
                              result.bad_components.num_components,
                              result.bad_components.largest_component,
                              result.vlo_size, result.vhi_size));
  }

  result.low_stats = run_stage(g, result.mis.state, vlo,
                               options.low_finisher, options.alpha, seed + 2);
  emit_phase("vlo", 2, result.vlo_size, result.low_stats);
  result.high_stats = run_stage(g, result.mis.state, vhi,
                                options.high_finisher, options.alpha, seed + 3);
  emit_phase("vhi", 3, result.vhi_size, result.high_stats);
  result.bad_stats = run_stage(g, result.mis.state, bad_mask,
                               options.bad_finisher, options.alpha, seed + 4);
  emit_phase("bad", 4, result.bad_size, result.bad_stats);

  // Defensive cleanup — must never trigger if the stage sets partition the
  // undecided nodes (tests assert cleanup_used == false).
  if (result.mis.undecided_count() > 0) {
    result.cleanup_used = true;
    const std::uint64_t leftover_count = result.mis.undecided_count();
    std::vector<std::uint8_t> leftover(g.num_nodes(), 0);
    for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
      leftover[v] = (result.mis.state[v] == MisState::kUndecided) ? 1 : 0;
    }
    const sim::RunStats stats = run_stage(g, result.mis.state, leftover,
                                          Finisher::kElection, options.alpha,
                                          seed + 5);
    emit_phase("cleanup", 5, leftover_count, stats);
    result.bad_stats.absorb(stats);
  }

  result.mis.stats = result.reduction_stats;
  result.mis.stats.absorb(result.shatter_stats);
  result.mis.stats.absorb(result.low_stats);
  result.mis.stats.absorb(result.high_stats);
  result.mis.stats.absorb(result.bad_stats);
  result.mis.stats.all_halted = true;
  return result;
}

}  // namespace arbmis::core
