#include "core/lw_tree_mis.h"

#include "graph/subgraph.h"
#include "mis/degree_reduction.h"
#include "mis/slow_local.h"
#include "mis/sparse_mis.h"

namespace arbmis::core {

LwTreeMisResult lw_tree_mis(graph::GraphView g, std::uint64_t seed,
                            LwTreeMisOptions options) {
  LwTreeMisResult result;

  // Phase 1: budgeted Métivier competition (the shattering phase).
  const std::uint32_t budget =
      mis::degree_reduction_budget(g.num_nodes(), options.budget_c);
  mis::DegreeReductionResult shatter =
      mis::degree_reduction(g, budget, seed);
  result.shatter_stats = shatter.stats;
  result.mis.state = std::move(shatter.state);
  result.residual_components =
      shattering_stats(g, shatter.residual_mask);

  // Phase 2: deterministic parallel finish of the residual components
  // (they all live in one induced subgraph; the simulator runs them
  // concurrently, which is exactly the "in parallel" of the paper).
  const graph::Subgraph sub =
      graph::induced_subgraph(g, shatter.residual_mask);
  if (sub.graph.num_nodes() > 0) {
    mis::MisResult finish;
    if (options.sparse_finish) {
      mis::SparseMisResult sparse =
          mis::sparse_mis(sub.graph, {.alpha = options.alpha}, seed + 1);
      finish = std::move(sparse.mis);
    } else {
      finish = mis::ElectionMis::run(sub.graph, seed + 1);
    }
    result.finish_stats = finish.stats;
    for (graph::NodeId local = 0; local < sub.graph.num_nodes(); ++local) {
      result.mis.state[sub.original(local)] = finish.state[local];
    }
  }
  mis::finalize_partial(g, result.mis.state);

  result.mis.stats = result.shatter_stats;
  result.mis.stats.absorb(result.finish_stats);
  result.mis.stats.rounds += 1;  // final flush
  result.mis.stats.all_halted = true;
  return result;
}

}  // namespace arbmis::core
