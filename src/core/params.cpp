#include "core/params.h"

#include <algorithm>
#include <cmath>

namespace arbmis::core {

namespace {

/// ln Δ, floored at 1 so tiny graphs don't zero the formulas out.
double safe_log(graph::NodeId max_degree) noexcept {
  return std::max(std::log(static_cast<double>(std::max<graph::NodeId>(
                      max_degree, 2))),
                  1.0);
}

/// floor(log2(x)) for x >= 1, else negative -> clamped to 0 scales by the
/// caller.
std::int64_t floor_log2(double x) noexcept {
  if (x < 1.0) return -1;
  return static_cast<std::int64_t>(std::floor(std::log2(x)));
}

double ipow(double base, int exponent) noexcept {
  double value = 1.0;
  for (int i = 0; i < exponent; ++i) value *= base;
  return value;
}

}  // namespace

std::uint64_t Params::rho(std::uint32_t scale_k) const noexcept {
  const double rho_value = rho_factor * static_cast<double>(max_degree) /
                           ipow(2.0, static_cast<int>(scale_k) + 1);
  return static_cast<std::uint64_t>(std::ceil(rho_value));
}

std::uint64_t Params::high_degree_threshold(
    std::uint32_t scale_k) const noexcept {
  return max_degree / (std::uint64_t{1} << std::min(scale_k, 63u)) + alpha;
}

std::uint64_t Params::bad_threshold(std::uint32_t scale_k) const noexcept {
  return max_degree / (std::uint64_t{1} << std::min(scale_k + 2, 63u));
}

std::uint64_t Params::residual_degree_cut() const noexcept {
  return high_degree_threshold(num_scales);
}

std::uint64_t Params::vhi_internal_degree_bound() const noexcept {
  return bad_threshold(num_scales);
}

std::uint32_t Params::total_rounds() const noexcept {
  return 1 + num_scales * (3 * iterations_per_scale + 2);
}

Params Params::paper_faithful(graph::NodeId alpha, graph::NodeId max_degree,
                              std::uint32_t p) {
  Params params;
  params.alpha = std::max<graph::NodeId>(alpha, 1);
  params.max_degree = max_degree;
  const double a = static_cast<double>(params.alpha);
  const double ln_delta = safe_log(max_degree);
  const double ln2_delta = ln_delta * ln_delta;

  // Θ = floor(log2(Δ / (1176·16·α^10·ln²Δ)))
  const double theta_arg = static_cast<double>(max_degree) /
                           (1176.0 * 16.0 * ipow(a, 10) * ln2_delta);
  params.num_scales =
      static_cast<std::uint32_t>(std::max<std::int64_t>(floor_log2(theta_arg), 0));

  // Λ = ceil(p·8·α²·(32·α^6+1)·ln(260·α^4·ln²Δ))
  const double lambda = static_cast<double>(p) * 8.0 * a * a *
                        (32.0 * ipow(a, 6) + 1.0) *
                        std::log(260.0 * ipow(a, 4) * ln2_delta);
  params.iterations_per_scale =
      static_cast<std::uint32_t>(std::ceil(std::max(lambda, 1.0)));

  // ρ_k = 8·lnΔ·Δ/2^(k+1)
  params.rho_factor = 8.0 * ln_delta;
  return params;
}

Params Params::practical(graph::NodeId alpha, graph::NodeId max_degree,
                         PracticalTuning tuning) {
  Params params;
  params.alpha = std::max<graph::NodeId>(alpha, 1);
  params.max_degree = max_degree;
  const double a = static_cast<double>(params.alpha);
  const double ln_delta = safe_log(max_degree);
  const double ln2_delta = ln_delta * ln_delta;

  const double leftover = tuning.shatter_constant * a * a * ln2_delta;
  const double theta_arg = static_cast<double>(max_degree) / leftover;
  params.num_scales =
      static_cast<std::uint32_t>(std::max<std::int64_t>(floor_log2(theta_arg), 0));
  // Never run scales whose bad threshold Δ/2^(k+2) would be zero — on
  // tiny-Δ graphs the scale machinery is meaningless and the finishing
  // stage handles everything.
  const std::int64_t scale_cap =
      std::max<std::int64_t>(floor_log2(static_cast<double>(max_degree)) - 2, 0);
  params.num_scales = static_cast<std::uint32_t>(
      std::min<std::int64_t>(params.num_scales, scale_cap));

  const double lambda =
      tuning.iteration_constant * a * a * std::log(4.0 * ln2_delta + 2.0);
  params.iterations_per_scale =
      static_cast<std::uint32_t>(std::ceil(std::max(lambda, 1.0)));

  params.rho_factor = tuning.rho_log_factor * ln_delta;
  return params;
}

}  // namespace arbmis::core
