// TreeIndependentSet — the Barenboim–Elkin–Pettie–Schneider tree MIS
// (FOCS 2012, §8) that the paper generalizes: BoundedArbIndependentSet is
// "essentially identical ... except for parameter values" (paper §2), so
// the tree algorithm is exactly the α = 1 instantiation, finished with
// the deterministic forest machinery of Lemma 3.8 (forest decomposition +
// Cole–Vishkin) instead of randomized competitions.
//
// This is the O(√(log n)·log log n)-round tree MIS the paper's
// introduction describes; the experiments use it as the α = 1 anchor of
// the α-sweep.
#pragma once

#include "core/arb_mis.h"

namespace arbmis::core {

struct TreeMisOptions {
  /// Use the printed parameter formulas instead of the practical preset.
  bool paper_faithful_params = false;
  /// Practical-preset tuning knobs.
  PracticalTuning tuning{};
};

/// Runs the tree MIS pipeline on a forest. Throws std::invalid_argument
/// if `g` contains a cycle — this entry point is the *tree* algorithm;
/// for general bounded-arboricity graphs call arb_mis() directly.
ArbMisResult tree_independent_set(graph::GraphView g, std::uint64_t seed,
                                  TreeMisOptions options = {});

}  // namespace arbmis::core
