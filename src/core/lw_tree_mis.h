// The Lenzen–Wattenhofer tree MIS architecture (PODC 2011) — the paper's
// §1 starting point: run the Métivier et al. competition for
// O(√(log n)·log log n) rounds ("all the important hard work happens in
// this phase"), by which point the surviving graph has shattered into
// small connected components, then finish each component deterministically
// in parallel.
//
// The paper analyzes the Barenboim et al. variant instead "for reasons of
// exposition"; this module implements the LW shape so the two shattering
// architectures can be compared like-for-like (experiment T4), and so the
// shattering claim itself — residual components after the budgeted phase
// are tiny — can be measured directly (it is the tree/α=1 analogue of
// Lemma 3.7).
#pragma once

#include "core/shattering.h"
#include "mis/mis_types.h"
#include "sim/network.h"

namespace arbmis::core {

struct LwTreeMisOptions {
  /// Métivier phase budget constant: rounds = c·√(log₂ n · log₂ log₂ n).
  double budget_c = 3.0;
  /// Finish residual components deterministically (forest decomposition +
  /// Cole–Vishkin via SparseMis) instead of by id election. Requires the
  /// residual graph to have small arboricity (true for forests).
  bool sparse_finish = true;
  graph::NodeId alpha = 1;
};

struct LwTreeMisResult {
  mis::MisResult mis;
  sim::RunStats shatter_stats;
  sim::RunStats finish_stats;
  /// Component structure of the residual (undecided) graph after the
  /// budgeted phase — the shattering measurement.
  ShatteringStats residual_components;
};

/// Works on any graph (the finish is always correct); the round-complexity
/// claim is for trees / bounded-arboricity inputs.
LwTreeMisResult lw_tree_mis(graph::GraphView g, std::uint64_t seed,
                            LwTreeMisOptions options = {});

}  // namespace arbmis::core
