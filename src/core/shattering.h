// Shattering statistics for the bad set B (paper Lemma 3.7): Theorem 3.6
// bounds Pr[v ∈ B] by 1/Δ^2p independently of nodes outside v's
// 3-neighborhood, which implies every connected component of G[B] is
// O(Δ^6 · log_Δ n) whp. This module measures the component-size
// distribution of any node set, plus the derived quantities the
// experiments report.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.h"

namespace arbmis::core {

struct ShatteringStats {
  std::uint64_t set_size = 0;         ///< |B|
  std::uint64_t num_components = 0;
  std::uint64_t largest_component = 0;
  double mean_component = 0.0;
  /// Sorted component sizes (ascending), for quantiles / histograms.
  std::vector<graph::NodeId> component_sizes;

  /// Lemma 3.7 reference scale: c·log n / log Δ (the t in the lemma; the
  /// lemma's bound is Δ^6·t, we report both factors).
  double log_delta_n = 0.0;
};

/// Component statistics of the subgraph induced by mask (1 = in set).
ShatteringStats shattering_stats(graph::GraphView g,
                                 std::span<const std::uint8_t> mask);

}  // namespace arbmis::core
