#include "core/tree_mis.h"

#include <stdexcept>

#include "graph/properties.h"

namespace arbmis::core {

ArbMisResult tree_independent_set(graph::GraphView g, std::uint64_t seed,
                                  TreeMisOptions options) {
  if (!graph::is_forest(g)) {
    throw std::invalid_argument(
        "tree_independent_set: input contains a cycle — use arb_mis() for "
        "general bounded-arboricity graphs");
  }
  ArbMisOptions arb_options;
  arb_options.alpha = 1;
  arb_options.paper_faithful_params = options.paper_faithful_params;
  arb_options.tuning = options.tuning;
  // Deterministic forest finishing (Lemma 3.8 machinery) on every stage:
  // the leftovers of a forest are forests, where the composite
  // Cole–Vishkin path is cheap (<= 4 forests, <= 81 sweep classes).
  arb_options.low_finisher = Finisher::kSparse;
  arb_options.high_finisher = Finisher::kSparse;
  arb_options.bad_finisher = Finisher::kSparse;
  return arb_mis(g, arb_options, seed);
}

}  // namespace arbmis::core
