// Parameterization of BoundedArbIndependentSet (the paper's Algorithm 1).
//
// The algorithm runs Θ scales of Λ iterations each; in scale k a node with
// residual degree above ρ_k sets its priority to zero (opts out), a node
// is "high degree" above Δ/2^k + α, and a node is marked bad when more
// than Δ/2^(k+2) of its active neighbors are high degree.
//
// Two presets:
//
//  * paper_faithful(): the printed formulas —
//        Θ   = floor(log2(Δ / (1176·16·α^10·ln²Δ)))
//        Λ   = ceil(p·8·α²·(32·α^6+1)·ln(260·α^4·ln²Δ))
//        ρ_k = 8·lnΔ·Δ/2^(k+1)
//    These constants are chosen for proof convenience: Θ <= 0 (zero
//    scales) for every graph that fits in memory once α >= 2, and the
//    paper itself notes the α-degree "is not difficult to reduce". The
//    preset exists so tests can pin the formulas and the degenerate path.
//
//  * practical(): identical functional shape with the proof slack removed
//    (α^10 -> α², α^8 -> α², constants -> small), so scales actually
//    execute on feasible graphs and the shattering dynamics can be
//    measured. Every constant is a visible field, so benches can ablate.
#pragma once

#include <cstdint>

#include "graph/graph.h"

namespace arbmis::core {

/// Tuning knobs for Params::practical (namespace scope: GCC rejects nested
/// aggregates with default member initializers as default arguments).
struct PracticalTuning {
  double shatter_constant = 1.0;    ///< leftover degree ≈ c·α²·ln²Δ
  double iteration_constant = 1.0;  ///< Λ ≈ c·α²·ln(4·ln²Δ)
  double rho_log_factor = 4.0;      ///< ρ_k = c·lnΔ·Δ/2^(k+1)
};

struct Params {
  graph::NodeId alpha = 1;
  graph::NodeId max_degree = 0;  ///< Δ of the input graph

  std::uint32_t num_scales = 0;           ///< Θ
  std::uint32_t iterations_per_scale = 0;  ///< Λ
  double rho_factor = 0.0;                 ///< ρ_k = rho_factor·Δ/2^(k+1)

  /// Competitiveness cap ρ_k for scale k (1-based, as in the paper).
  std::uint64_t rho(std::uint32_t scale_k) const noexcept;
  /// High-degree threshold Δ/2^k + α for scale k.
  std::uint64_t high_degree_threshold(std::uint32_t scale_k) const noexcept;
  /// Bad-marking threshold Δ/2^(k+2) for scale k.
  std::uint64_t bad_threshold(std::uint32_t scale_k) const noexcept;

  /// Thresholds the finishing phase derives from the final scale Θ
  /// (paper §3.3): Vlo/Vhi degree cut Δ/2^Θ + α ...
  std::uint64_t residual_degree_cut() const noexcept;
  /// ... and the guaranteed max degree inside G[Vhi], Δ/2^(Θ+2).
  std::uint64_t vhi_internal_degree_bound() const noexcept;

  /// Simulator rounds one full run takes (fixed schedule):
  /// 1 + Θ·(3Λ + 2).
  std::uint32_t total_rounds() const noexcept;

  static Params paper_faithful(graph::NodeId alpha, graph::NodeId max_degree,
                               std::uint32_t p = 1);

  using PracticalTuning = arbmis::core::PracticalTuning;

  static Params practical(graph::NodeId alpha, graph::NodeId max_degree,
                          PracticalTuning tuning = {});
};

}  // namespace arbmis::core
