#include "core/ghaffari_arb.h"

#include "graph/subgraph.h"
#include "mis/degree_reduction.h"
#include "mis/ghaffari.h"

namespace arbmis::core {

GhaffariArbResult ghaffari_arb_mis(graph::GraphView g, std::uint64_t seed,
                                   GhaffariArbOptions options) {
  GhaffariArbResult result;
  result.mis.state.assign(g.num_nodes(), mis::MisState::kUndecided);

  std::vector<std::uint8_t> residual(g.num_nodes(), 1);
  if (!options.skip_reduction) {
    const std::uint32_t budget =
        mis::degree_reduction_budget(g.num_nodes(), options.reduction_c);
    mis::DegreeReductionResult reduction =
        mis::degree_reduction(g, budget, seed);
    result.reduction_stats = reduction.stats;
    result.residual_max_degree = reduction.residual_max_degree;
    result.residual_nodes = reduction.residual_nodes;
    result.mis.state = std::move(reduction.state);
    residual = std::move(reduction.residual_mask);
  } else {
    result.residual_max_degree = g.max_degree();
    result.residual_nodes = g.num_nodes();
  }

  const graph::Subgraph sub = graph::induced_subgraph(g, residual);
  if (sub.graph.num_nodes() > 0) {
    mis::MisResult stage = mis::GhaffariMis::run(sub.graph, seed + 1);
    result.ghaffari_stats = stage.stats;
    for (graph::NodeId local = 0; local < sub.graph.num_nodes(); ++local) {
      result.mis.state[sub.original(local)] = stage.state[local];
    }
  }
  mis::finalize_partial(g, result.mis.state);

  result.mis.stats = result.reduction_stats;
  result.mis.stats.absorb(result.ghaffari_stats);
  result.mis.stats.rounds += 1;  // the final coverage flush
  result.mis.stats.all_halted = true;
  return result;
}

}  // namespace arbmis::core
