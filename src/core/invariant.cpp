#include "core/invariant.h"

#include <algorithm>

namespace arbmis::core {

InvariantAuditor::InvariantAuditor(graph::GraphView g,
                                   const BoundedArbIndependentSet& algorithm)
    : graph_(g), algorithm_(&algorithm) {}

sim::Network::RoundObserver InvariantAuditor::observer() {
  return [this](const sim::Network& net, std::uint32_t round) {
    if (algorithm_->is_scale_end(round)) {
      audit_scale(net, algorithm_->schedule_point(round).scale);
    }
  };
}

void InvariantAuditor::audit_scale(const sim::Network& net,
                                   std::uint32_t scale) {
  graph::GraphView g = graph_;
  const Params& params = algorithm_->params();
  // Active = still in VIB = not halted. (Nodes that went bad or joined in
  // this very round have already halted when the observer fires.)
  std::vector<std::uint8_t> active(g.num_nodes(), 0);
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    active[v] = net.halted(v) ? 0 : 1;
  }
  std::vector<std::uint64_t> residual_degree(g.num_nodes(), 0);
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    if (!active[v]) continue;
    for (graph::NodeId w : g.neighbors(v)) residual_degree[v] += active[w];
  }

  ScaleAudit audit;
  audit.scale = scale;
  audit.bad_threshold = params.bad_threshold(scale);
  const std::uint64_t high_threshold = params.high_degree_threshold(scale);
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    if (!active[v]) continue;
    ++audit.active_nodes;
    std::uint64_t high_neighbors = 0;
    for (graph::NodeId w : g.neighbors(v)) {
      if (active[w] && residual_degree[w] > high_threshold) ++high_neighbors;
    }
    audit.max_high_degree_neighbors =
        std::max(audit.max_high_degree_neighbors, high_neighbors);
    if (high_neighbors > audit.bad_threshold) ++audit.violations;
  }
  audits_.push_back(audit);
}

bool InvariantAuditor::all_hold() const noexcept {
  for (const ScaleAudit& audit : audits_) {
    if (audit.violations > 0) return false;
  }
  return true;
}

}  // namespace arbmis::core
