// The Ghaffari arboricity corollary (paper §1.2): combining a
// degree-reduction pre-phase with Ghaffari's O(log Δ)-local MIS gives an
// O(log α + √(log n))-round MIS for arboricity-α graphs — the algorithm
// the paper concedes "dominates the round complexity of our algorithm for
// all values of α and n". Implemented so the comparison experiment (T4)
// can measure that domination instead of asserting it.
//
// Pipeline: degree reduction (Theorem 7.2 substitute, see
// mis/degree_reduction.h) caps the residual degree, then GhaffariMis
// finishes the residual graph; its O(log Δ_residual) local phase is where
// the log α + √(log n) bound comes from.
#pragma once

#include "mis/mis_types.h"
#include "sim/network.h"

namespace arbmis::core {

struct GhaffariArbResult {
  mis::MisResult mis;  ///< final labels; stats = summed stage rounds
  sim::RunStats reduction_stats;
  sim::RunStats ghaffari_stats;
  graph::NodeId residual_max_degree = 0;
  graph::NodeId residual_nodes = 0;
};

struct GhaffariArbOptions {
  /// Degree-reduction budget constant (rounds = c·√(log n·log log n)).
  double reduction_c = 6.0;
  /// Skip the reduction entirely (plain Ghaffari, for ablation).
  bool skip_reduction = false;
};

GhaffariArbResult ghaffari_arb_mis(graph::GraphView g, std::uint64_t seed,
                                   GhaffariArbOptions options = {});

}  // namespace arbmis::core
