#include "core/bounded_arb.h"

#include <algorithm>

namespace arbmis::core {

BoundedArbIndependentSet::BoundedArbIndependentSet(graph::GraphView g,
                                                   Params params)
    : params_(params),
      rounds_per_scale_(3 * params.iterations_per_scale + 2),
      outcome_(g.num_nodes(), ArbOutcome::kActive),
      my_priority_(g.num_nodes(), 0),
      deg_ib_(g.num_nodes(), 0),
      decided_scale_(g.num_nodes(), 0),
      last_pass_scale_(g.num_nodes(), 0) {}

SchedulePoint BoundedArbIndependentSet::schedule_point(
    std::uint32_t round) const noexcept {
  SchedulePoint point;
  if (round == 0 || params_.num_scales == 0) return point;
  const std::uint32_t index = round - 1;
  point.scale = index / rounds_per_scale_ + 1;
  const std::uint32_t offset = index % rounds_per_scale_;
  const std::uint32_t iteration_rounds = 3 * params_.iterations_per_scale;
  if (offset < iteration_rounds) {
    point.iteration = offset / 3 + 1;
    switch (offset % 3) {
      case 0: point.phase = SchedulePoint::Phase::kPrio; break;
      case 1: point.phase = SchedulePoint::Phase::kResolve; break;
      default: point.phase = SchedulePoint::Phase::kAliveProcess; break;
    }
  } else if (offset == iteration_rounds) {
    point.phase = SchedulePoint::Phase::kDegreeReport;
  } else {
    point.phase = SchedulePoint::Phase::kBadCheck;
  }
  return point;
}

bool BoundedArbIndependentSet::is_scale_end(
    std::uint32_t round) const noexcept {
  const SchedulePoint point = schedule_point(round);
  return point.scale >= 1 && point.scale <= params_.num_scales &&
         point.phase == SchedulePoint::Phase::kBadCheck;
}

std::vector<BoundedArbIndependentSet::ScaleStats>
BoundedArbIndependentSet::scale_stats() const {
  // Every event the old in-callback counters recorded is recoverable from
  // (outcome, decided scale, last bad-check passed): a join/cover/bad
  // counts at its decision scale, and a node contributes to active_after
  // of every scale whose bad-check it survived.
  const std::size_t n = outcome_.size();
  std::uint32_t max_scale = 0;
  for (std::size_t v = 0; v < n; ++v) {
    max_scale = std::max(max_scale, last_pass_scale_[v]);
    if (outcome_[v] == ArbOutcome::kInMis ||
        outcome_[v] == ArbOutcome::kCovered ||
        outcome_[v] == ArbOutcome::kBad) {
      max_scale = std::max(max_scale, decided_scale_[v]);
    }
  }
  std::vector<ScaleStats> stats(max_scale);
  for (std::uint32_t s = 0; s < max_scale; ++s) stats[s].scale = s + 1;
  for (std::size_t v = 0; v < n; ++v) {
    const std::uint32_t d = decided_scale_[v];
    if (d >= 1 && d <= max_scale) {
      switch (outcome_[v]) {
        case ArbOutcome::kInMis: ++stats[d - 1].joined; break;
        case ArbOutcome::kCovered: ++stats[d - 1].covered; break;
        case ArbOutcome::kBad: ++stats[d - 1].bad; break;
        default: break;
      }
    }
    for (std::uint32_t s = 1; s <= last_pass_scale_[v]; ++s) {
      ++stats[s - 1].active_after;
    }
  }
  return stats;
}

void BoundedArbIndependentSet::on_start(sim::NodeContext& ctx) {
  if (params_.num_scales == 0) {
    outcome_[ctx.id()] = ArbOutcome::kRemaining;
    ctx.halt();
    return;
  }
  ctx.broadcast(kAlive, 0);
}

void BoundedArbIndependentSet::on_round(sim::NodeContext& ctx,
                                        std::span<const sim::Message> inbox) {
  const graph::NodeId v = ctx.id();
  const SchedulePoint point = schedule_point(ctx.round());

  if (point.scale > params_.num_scales) {
    // Past the final scale (only reachable on degenerate schedules).
    outcome_[v] = ArbOutcome::kRemaining;
    decided_scale_[v] = point.scale;
    ctx.halt();
    return;
  }

  // A neighbor's join is honored in any phase (it can only arrive in
  // kAliveProcess rounds by the schedule, but checking unconditionally is
  // free and robust).
  for (const sim::Message& m : inbox) {
    if (m.tag == kJoined) {
      outcome_[v] = ArbOutcome::kCovered;
      decided_scale_[v] = point.scale;
      ctx.halt();
      return;
    }
  }

  switch (point.phase) {
    case SchedulePoint::Phase::kBootstrap:
      return;

    case SchedulePoint::Phase::kPrio: {
      std::uint64_t degree = 0;
      for (const sim::Message& m : inbox) degree += (m.tag == kAlive);
      deg_ib_[v] = degree;
      std::uint64_t r = 0;
      if (degree <= params_.rho(point.scale)) {
        r = ctx.rng().next();
        if (r == 0) r = 1;  // 0 is reserved for non-competitive nodes
      }
      my_priority_[v] = r;
      ctx.broadcast(kPriority, r);
      return;
    }

    case SchedulePoint::Phase::kResolve: {
      bool winner = true;
      bool any_active_neighbor = false;
      for (const sim::Message& m : inbox) {
        if (m.tag != kPriority) continue;
        any_active_neighbor = true;
        if (m.payload >= my_priority_[v]) winner = false;
      }
      // r(v) must strictly exceed every neighbor's r; a non-competitive
      // node (r = 0) can win only vacuously, i.e. with no active
      // neighbors — in which case its residual degree was 0 <= ρ_k and it
      // was competitive anyway.
      if (winner && (my_priority_[v] > 0 || !any_active_neighbor)) {
        outcome_[v] = ArbOutcome::kInMis;
        decided_scale_[v] = point.scale;
        if (any_active_neighbor) ctx.broadcast(kJoined, 0);
        ctx.halt();
      }
      return;
    }

    case SchedulePoint::Phase::kAliveProcess:
      // kJoined was handled above; survivors stay in the race.
      ctx.broadcast(kAlive, 0);
      return;

    case SchedulePoint::Phase::kDegreeReport: {
      std::uint64_t degree = 0;
      for (const sim::Message& m : inbox) degree += (m.tag == kAlive);
      deg_ib_[v] = degree;
      ctx.broadcast(kDegree, degree);
      return;
    }

    case SchedulePoint::Phase::kBadCheck: {
      const std::uint64_t high_threshold =
          params_.high_degree_threshold(point.scale);
      std::uint64_t high_neighbors = 0;
      for (const sim::Message& m : inbox) {
        if (m.tag == kDegree && m.payload > high_threshold) ++high_neighbors;
      }
      if (high_neighbors > params_.bad_threshold(point.scale)) {
        outcome_[v] = ArbOutcome::kBad;
        decided_scale_[v] = point.scale;
        ctx.halt();
        return;
      }
      last_pass_scale_[v] = point.scale;
      if (point.scale == params_.num_scales) {
        outcome_[v] = ArbOutcome::kRemaining;
        decided_scale_[v] = point.scale;
        ctx.halt();
        return;
      }
      ctx.broadcast(kAlive, 0);
      return;
    }
  }
}

std::uint64_t BoundedArbIndependentSet::Result::count(
    ArbOutcome o) const noexcept {
  std::uint64_t total = 0;
  for (ArbOutcome x : outcome) total += (x == o);
  return total;
}

namespace {
std::vector<std::uint8_t> mask_of(const std::vector<ArbOutcome>& outcome,
                                  ArbOutcome which) {
  std::vector<std::uint8_t> mask(outcome.size(), 0);
  for (std::size_t v = 0; v < outcome.size(); ++v) {
    mask[v] = (outcome[v] == which) ? 1 : 0;
  }
  return mask;
}
}  // namespace

std::vector<std::uint8_t> BoundedArbIndependentSet::Result::bad_mask() const {
  return mask_of(outcome, ArbOutcome::kBad);
}

std::vector<std::uint8_t> BoundedArbIndependentSet::Result::mis_mask() const {
  return mask_of(outcome, ArbOutcome::kInMis);
}

std::vector<std::uint8_t> BoundedArbIndependentSet::Result::remaining_mask()
    const {
  return mask_of(outcome, ArbOutcome::kRemaining);
}

BoundedArbIndependentSet::Result BoundedArbIndependentSet::run(
    graph::GraphView g, Params params, std::uint64_t seed,
    const sim::Network::RoundObserver& observer) {
  BoundedArbIndependentSet algorithm(g, params);
  sim::Network net(g, seed);
  Result result;
  result.stats = net.run(algorithm, params.total_rounds(), observer);
  result.outcome = algorithm.outcome_;
  result.params = params;
  result.scale_stats = algorithm.scale_stats();
  return result;
}

}  // namespace arbmis::core
