// Audit of the paper's Invariant (§3):
//
//   At the end of scale k, for all v ∈ VIB:
//     |{w ∈ Γ_IB(v) : deg_IB(w) > Δ/2^k + α}| <= Δ/2^(k+2)
//
// The audit attaches to the simulator as a RoundObserver, fires at every
// kBadCheck round, recomputes residual degrees globally from the graph and
// the halt states (it never trusts the algorithm's own bookkeeping), and
// records per-scale violation counts. The Invariant holds by construction
// for nodes that survive step 2(b) — asserting zero violations is the
// test-suite's proof that the implementation's bad-marking logic matches
// the paper's inequality; the recorded margin distributions feed
// EXPERIMENTS.md.
#pragma once

#include <cstdint>
#include <vector>

#include "core/bounded_arb.h"
#include "graph/graph.h"
#include "sim/network.h"

namespace arbmis::core {

class InvariantAuditor {
 public:
  InvariantAuditor(graph::GraphView g,
                   const BoundedArbIndependentSet& algorithm);

  /// Observer to pass into BoundedArbIndependentSet::run.
  sim::Network::RoundObserver observer();

  struct ScaleAudit {
    std::uint32_t scale = 0;
    std::uint64_t active_nodes = 0;   ///< nodes still active after the scale
    std::uint64_t violations = 0;     ///< active nodes violating the Invariant
    std::uint64_t max_high_degree_neighbors = 0;
    std::uint64_t bad_threshold = 0;  ///< Δ/2^(k+2) for reference
  };

  const std::vector<ScaleAudit>& audits() const noexcept { return audits_; }

  /// True if no scale recorded a violation.
  bool all_hold() const noexcept;

 private:
  void audit_scale(const sim::Network& net, std::uint32_t scale);

  graph::GraphView graph_;
  const BoundedArbIndependentSet* algorithm_;
  std::vector<ScaleAudit> audits_;
};

}  // namespace arbmis::core
