// ArbMIS — the paper's Algorithm 2: the full MIS pipeline around
// BoundedArbIndependentSet.
//
//   1. (optional) degree-reduction pre-phase (Theorem 7.2 substitute),
//   2. BoundedArbIndependentSet on the residual graph -> I, B, VIB,
//   3. VIB split by the scale-Θ degree cut into Vlo / Vhi, each finished
//      by a bounded-degree MIS (paper §3.3; see DESIGN.md for the
//      Theorem 7.4 substitution),
//   4. the small components of G[B] finished deterministically
//      (Lemma 3.8),
//   5. union of the stage MISes, with a coverage flush between stages so
//      later stages respect earlier joins.
//
// Stages run on induced subgraphs of the still-undecided stage set; that
// is exactly the "process the sets one after the other" composition of the
// paper, and the round counts add up (components of a stage run in
// parallel inside one simulator run).
#pragma once

#include <cstdint>

#include "core/bounded_arb.h"
#include "core/invariant.h"
#include "core/params.h"
#include "core/shattering.h"
#include "mis/mis_types.h"

namespace arbmis::core {

/// Which algorithm finishes a stage's leftover subgraph.
enum class Finisher : std::uint8_t {
  kMetivier,  ///< randomized, O(log residual) whp — pipeline default
  kLinial,    ///< deterministic, O(log* n + D²) for degree-D leftovers
  kElection,  ///< deterministic id election — default for the bad set
  kSparse,    ///< Lemma 3.8 machinery: forest decomposition + Cole–Vishkin
  kGather,    ///< §2.1 literal: leaders gather small components and solve
};

struct ArbMisOptions {
  /// Arboricity bound; drives Params and the kSparse finisher.
  graph::NodeId alpha = 1;
  /// Use Params::practical (default) or Params::paper_faithful.
  bool paper_faithful_params = false;
  Params::PracticalTuning tuning{};
  std::uint32_t paper_p = 1;

  /// Enable the degree-reduction pre-phase (paper Theorem 2.1's route to
  /// an n-only bound).
  bool degree_reduction = false;
  double degree_reduction_c = 6.0;

  Finisher low_finisher = Finisher::kMetivier;
  Finisher high_finisher = Finisher::kMetivier;
  Finisher bad_finisher = Finisher::kElection;

  /// Attach the Invariant auditor to the shattering phase (paper §3's
  /// Invariant, re-derived globally at every scale end). Costs a global
  /// recomputation per scale; off by default.
  bool audit_invariant = false;
};

struct ArbMisResult {
  /// Final global labeling; stats hold the summed rounds of all stages.
  mis::MisResult mis;
  /// Algorithm 1 outcome on the (residual) graph it ran on, in original
  /// node ids.
  std::vector<ArbOutcome> shatter_outcome;
  Params params;
  /// Component statistics of the bad set (Lemma 3.7 measurement).
  ShatteringStats bad_components;

  // Per-stage round/message accounting.
  sim::RunStats reduction_stats;
  sim::RunStats shatter_stats;
  sim::RunStats low_stats;
  sim::RunStats high_stats;
  sim::RunStats bad_stats;

  std::uint64_t vlo_size = 0;
  std::uint64_t vhi_size = 0;
  std::uint64_t bad_size = 0;
  /// True if the defensive final cleanup pass had to run (a pipeline
  /// composition bug — tests assert this stays false).
  bool cleanup_used = false;

  /// Per-scale Invariant audits (only when options.audit_invariant).
  std::vector<InvariantAuditor::ScaleAudit> invariant_audits;
  bool invariant_held = true;
};

/// Runs the full pipeline. Seeds of the stages derive from `seed`.
ArbMisResult arb_mis(graph::GraphView g, const ArbMisOptions& options,
                     std::uint64_t seed);

}  // namespace arbmis::core
