// BoundedArbIndependentSet — the paper's Algorithm 1, run verbatim on the
// CONGEST simulator.
//
// Structure (paper §2): Θ scales; in scale k, Λ iterations of the Métivier
// competition where a node whose residual degree exceeds ρ_k participates
// with priority 0 (it cannot win, but still blocks no one), winners join I
// and their neighborhoods leave; at the end of the scale a node with more
// than Δ/2^(k+2) active neighbors of degree above Δ/2^k + α is marked bad
// and leaves. The returned sets are I (independent), B (bad — shattered
// into small components whp, Theorem 3.6 / Lemma 3.7), the covered nodes,
// and the still-active remainder VIB (low-degree by the Invariant, §3.3).
//
// The algorithm needs to know Δ, α, n (standard assumptions in this
// literature); it never sees an orientation — matching the paper's remark
// that the orientation is an analysis device only.
//
// Fixed round schedule (every node computes it from Params alone):
//   round 0:                 all nodes broadcast kAlive
//   per scale k (3Λ+2 rounds):
//     iteration i in [1,Λ]:
//       kPrio:    count kAlive -> deg_IB; draw r (0 if deg_IB > ρ_k);
//                 broadcast kPriority(r)
//       kResolve: r strictly above all received priorities -> join I,
//                 broadcast kJoined, halt
//       kAliveP:  seen kJoined -> covered, halt; else broadcast kAlive
//     kDegreeReport: count kAlive -> deg_IB; broadcast kDegree(deg_IB)
//     kBadCheck: count received degrees above Δ/2^k + α; above Δ/2^(k+2)
//                of them -> bad, halt; last scale -> remaining, halt;
//                else broadcast kAlive for the next scale
#pragma once

#include <vector>

#include "core/params.h"
#include "mis/mis_types.h"
#include "sim/algorithm.h"
#include "sim/network.h"

namespace arbmis::core {

/// Final disposition of a node after Algorithm 1.
enum class ArbOutcome : std::uint8_t {
  kActive = 0,     ///< only observable mid-run
  kInMis = 1,      ///< joined I
  kCovered = 2,    ///< neighbor joined I
  kBad = 3,        ///< marked bad in step 2(b)
  kRemaining = 4,  ///< survived all scales in VIB
};

/// Where a given simulator round falls in the schedule.
struct SchedulePoint {
  std::uint32_t scale = 0;      ///< 1-based; 0 = the round-0 bootstrap
  std::uint32_t iteration = 0;  ///< 1-based within the scale; 0 = scale end
  enum class Phase : std::uint8_t {
    kBootstrap,
    kPrio,
    kResolve,
    kAliveProcess,
    kDegreeReport,
    kBadCheck,
  } phase = Phase::kBootstrap;
};

class BoundedArbIndependentSet : public sim::Algorithm {
 public:
  BoundedArbIndependentSet(graph::GraphView g, Params params);

  std::string_view name() const override { return "bounded_arb"; }
  void on_start(sim::NodeContext& ctx) override;
  void on_round(sim::NodeContext& ctx,
                std::span<const sim::Message> inbox) override;

  const Params& params() const noexcept { return params_; }
  const std::vector<ArbOutcome>& outcomes() const noexcept { return outcome_; }

  /// Maps a simulator round to (scale, iteration, phase).
  SchedulePoint schedule_point(std::uint32_t round) const noexcept;
  /// True if `round` is a kBadCheck round (scale boundary) — the moment
  /// the paper's Invariant is supposed to hold; audits hook here.
  bool is_scale_end(std::uint32_t round) const noexcept;

  /// Per-scale aggregate progress. Recomputed on demand from per-node
  /// decision records (callbacks write only their own node's slots — the
  /// thread-safety contract in sim/algorithm.h — so whole-run aggregates
  /// are derived after the fact rather than incremented mid-callback).
  struct ScaleStats {
    std::uint32_t scale = 0;
    std::uint64_t joined = 0;
    std::uint64_t covered = 0;
    std::uint64_t bad = 0;
    std::uint64_t active_after = 0;
  };
  std::vector<ScaleStats> scale_stats() const;

  struct Result {
    std::vector<ArbOutcome> outcome;
    Params params;
    sim::RunStats stats;
    std::vector<ScaleStats> scale_stats;

    std::uint64_t count(ArbOutcome o) const noexcept;
    /// 1-mask of bad nodes (the set B).
    std::vector<std::uint8_t> bad_mask() const;
    /// 1-mask of MIS members (the set I).
    std::vector<std::uint8_t> mis_mask() const;
    /// 1-mask of VIB survivors.
    std::vector<std::uint8_t> remaining_mask() const;
  };

  /// Runs the fixed schedule on a fresh network.
  static Result run(graph::GraphView g, Params params, std::uint64_t seed,
                    const sim::Network::RoundObserver& observer = {});

 private:
  enum Tag : std::uint32_t {
    kAlive = 1,
    kPriority = 2,
    kJoined = 3,
    kDegree = 4,
  };

  Params params_;
  std::uint32_t rounds_per_scale_;
  std::vector<ArbOutcome> outcome_;
  std::vector<std::uint64_t> my_priority_;
  std::vector<std::uint64_t> deg_ib_;
  /// Scale at which the node's outcome was decided (0 = at start / never).
  std::vector<std::uint32_t> decided_scale_;
  /// Last scale whose bad-check the node survived (0 = none yet).
  std::vector<std::uint32_t> last_pass_scale_;
};

}  // namespace arbmis::core
