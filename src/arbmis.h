// Umbrella header: everything in the arbmis library.
//
// Prefer the per-module headers in production code; this exists for quick
// experiments and the examples.
#pragma once

#include "core/arb_mis.h"         // IWYU pragma: export
#include "core/bounded_arb.h"     // IWYU pragma: export
#include "core/ghaffari_arb.h"    // IWYU pragma: export
#include "core/invariant.h"       // IWYU pragma: export
#include "core/lw_tree_mis.h"     // IWYU pragma: export
#include "core/params.h"          // IWYU pragma: export
#include "core/shattering.h"      // IWYU pragma: export
#include "core/tree_mis.h"        // IWYU pragma: export
#include "graph/arboricity_exact.h"  // IWYU pragma: export
#include "graph/generators.h"     // IWYU pragma: export
#include "graph/graph.h"          // IWYU pragma: export
#include "graph/io.h"             // IWYU pragma: export
#include "graph/orientation.h"    // IWYU pragma: export
#include "graph/orientation_opt.h"  // IWYU pragma: export
#include "graph/properties.h"     // IWYU pragma: export
#include "graph/subgraph.h"       // IWYU pragma: export
#include "mis/cole_vishkin.h"     // IWYU pragma: export
#include "mis/color_sweep.h"      // IWYU pragma: export
#include "mis/degree_reduction.h"  // IWYU pragma: export
#include "mis/distributed_verify.h"  // IWYU pragma: export
#include "mis/forest_decomposition.h"  // IWYU pragma: export
#include "mis/ghaffari.h"         // IWYU pragma: export
#include "mis/greedy.h"           // IWYU pragma: export
#include "mis/linial.h"           // IWYU pragma: export
#include "mis/luby.h"             // IWYU pragma: export
#include "mis/matching.h"         // IWYU pragma: export
#include "mis/metivier.h"         // IWYU pragma: export
#include "mis/slow_local.h"       // IWYU pragma: export
#include "mis/sparse_mis.h"       // IWYU pragma: export
#include "mis/verifier.h"         // IWYU pragma: export
#include "readk/bounds.h"         // IWYU pragma: export
#include "readk/events.h"         // IWYU pragma: export
#include "readk/family.h"         // IWYU pragma: export
#include "readk/montecarlo.h"     // IWYU pragma: export
#include "mis/bit_metivier.h"     // IWYU pragma: export
#include "mis/gather_solve.h"     // IWYU pragma: export
#include "sim/aggregate.h"        // IWYU pragma: export
#include "sim/algorithm.h"        // IWYU pragma: export
#include "sim/bfs_rooting.h"      // IWYU pragma: export
#include "sim/message.h"          // IWYU pragma: export
#include "sim/network.h"          // IWYU pragma: export
#include "sim/trace.h"            // IWYU pragma: export
#include "util/histogram.h"       // IWYU pragma: export
#include "util/log.h"             // IWYU pragma: export
#include "util/rng.h"             // IWYU pragma: export
#include "util/stats.h"           // IWYU pragma: export
#include "util/table.h"           // IWYU pragma: export
