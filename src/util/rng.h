// Deterministic pseudo-random number generation for the arbmis project.
//
// All randomized algorithms in this repository draw exclusively from Rng
// streams so that every experiment is reproducible from a single 64-bit
// seed. Per-node streams are derived with Rng::child(id), which uses a
// SplitMix64 hash of (state, id) so streams for distinct ids are
// statistically independent and insensitive to the order in which they are
// created.
//
// The generator is xoshiro256** (Blackman & Vigna, 2018): fast, 256-bit
// state, passes BigCrush. Seeding goes through SplitMix64 as its authors
// recommend.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace arbmis::util {

/// SplitMix64 step: advances `state` and returns the next output.
/// Exposed because it is also a good 64-bit mixing function.
constexpr std::uint64_t splitmix64_next(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Stateless 64-bit mix of two words; used to derive child stream seeds.
constexpr std::uint64_t mix64(std::uint64_t a, std::uint64_t b) noexcept {
  std::uint64_t s = a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2));
  return splitmix64_next(s);
}

/// xoshiro256** pseudo-random generator with convenience draws.
///
/// Satisfies UniformRandomBitGenerator, so it can also be plugged into
/// <random> distributions, although the built-in draws below are preferred
/// for speed and cross-platform determinism.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four state words from SplitMix64(seed).
  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept {
    std::uint64_t s = seed;
    for (auto& word : state_) word = splitmix64_next(s);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  /// Next raw 64-bit output.
  result_type operator()() noexcept { return next(); }

  result_type next() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1) with 53 bits of precision.
  double uniform01() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound). bound == 0 returns 0.
  /// Uses Lemire's multiply-shift rejection method (unbiased).
  std::uint64_t below(std::uint64_t bound) noexcept {
    if (bound == 0) return 0;
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto low = static_cast<std::uint64_t>(m);
    if (low < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (low < threshold) {
        x = next();
        m = static_cast<__uint128_t>(x) * bound;
        low = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept {
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(below(span));
  }

  /// Bernoulli draw with success probability p (clamped to [0,1]).
  bool bernoulli(double p) noexcept { return uniform01() < p; }

  /// Derives a statistically independent stream for `id` (e.g. a node id).
  /// Children of the same Rng with distinct ids do not collide, and the
  /// parent's own stream is unaffected.
  Rng child(std::uint64_t id) const noexcept {
    const std::uint64_t base =
        mix64(state_[0] ^ state_[2], state_[1] ^ state_[3]);
    return Rng{mix64(base, id)};
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace arbmis::util
