#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace arbmis::util {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const noexcept {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n1 = static_cast<double>(n_);
  const auto n2 = static_cast<double>(other.n_);
  const double total = n1 + n2;
  mean_ += delta * n2 / total;
  m2_ += other.m2_ + delta * delta * n1 * n2 / total;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double quantile(std::span<const double> sorted_values, double q) noexcept {
  if (sorted_values.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(sorted_values.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted_values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted_values[lo] * (1.0 - frac) + sorted_values[hi] * frac;
}

std::vector<double> quantiles(std::span<const double> values,
                              std::span<const double> qs) {
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  std::vector<double> out;
  out.reserve(qs.size());
  for (double q : qs) out.push_back(quantile(sorted, q));
  return out;
}

Interval wilson_interval(std::uint64_t successes, std::uint64_t trials,
                         double z) noexcept {
  if (trials == 0) return {0.0, 1.0};
  const auto n = static_cast<double>(trials);
  const double phat = static_cast<double>(successes) / n;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = (phat + z2 / (2.0 * n)) / denom;
  const double margin =
      z * std::sqrt(phat * (1.0 - phat) / n + z2 / (4.0 * n * n)) / denom;
  return {std::max(0.0, center - margin), std::min(1.0, center + margin)};
}

LinearFit linear_fit(std::span<const double> xs,
                     std::span<const double> ys) noexcept {
  LinearFit fit;
  const std::size_t n = std::min(xs.size(), ys.size());
  if (n < 2) return fit;
  double sx = 0, sy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    sx += xs[i];
    sy += ys[i];
  }
  const double mx = sx / static_cast<double>(n);
  const double my = sy / static_cast<double>(n);
  double sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  if (sxx <= 0.0) return fit;
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  fit.r_squared = syy > 0.0 ? (sxy * sxy) / (sxx * syy) : 1.0;
  return fit;
}

double correlation(std::span<const double> xs,
                   std::span<const double> ys) noexcept {
  const std::size_t n = std::min(xs.size(), ys.size());
  if (n < 2) return 0.0;
  const LinearFit fit = linear_fit(xs.first(n), ys.first(n));
  if (fit.r_squared <= 0.0) return 0.0;
  const double r = std::sqrt(fit.r_squared);
  return fit.slope >= 0.0 ? r : -r;
}

double log_factorial(std::uint64_t n) noexcept {
  return std::lgamma(static_cast<double>(n) + 1.0);
}

double log_binomial(std::uint64_t n, std::uint64_t k) noexcept {
  if (k > n) return -std::numeric_limits<double>::infinity();
  return log_factorial(n) - log_factorial(k) - log_factorial(n - k);
}

double binomial_cdf(std::uint64_t k, std::uint64_t n, double p) noexcept {
  if (p <= 0.0) return 1.0;
  if (p >= 1.0) return k >= n ? 1.0 : 0.0;
  if (k >= n) return 1.0;
  const double logp = std::log(p);
  const double logq = std::log1p(-p);
  double total = 0.0;
  for (std::uint64_t i = 0; i <= k; ++i) {
    const double term = log_binomial(n, i) + static_cast<double>(i) * logp +
                        static_cast<double>(n - i) * logq;
    total += std::exp(term);
  }
  return std::min(total, 1.0);
}

}  // namespace arbmis::util
