#include "util/histogram.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <sstream>

namespace arbmis::util {

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), counts_(std::max<std::size_t>(buckets, 1), 0) {
  if (hi_ <= lo_) hi_ = lo_ + 1.0;
}

void Histogram::add(double x) noexcept {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  auto idx = static_cast<std::size_t>((x - lo_) / width);
  idx = std::min(idx, counts_.size() - 1);
  ++counts_[idx];
}

double Histogram::bucket_lo(std::size_t i) const noexcept {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(i);
}

double Histogram::bucket_hi(std::size_t i) const noexcept {
  return bucket_lo(i + 1);
}

namespace {
std::string bar(std::uint64_t count, std::uint64_t max_count,
                std::size_t width) {
  if (max_count == 0) return {};
  const auto len = static_cast<std::size_t>(
      std::llround(static_cast<double>(count) /
                   static_cast<double>(max_count) * static_cast<double>(width)));
  return std::string(len, '#');
}
}  // namespace

std::string Histogram::to_string(std::size_t bar_width) const {
  std::uint64_t max_count = 0;
  for (auto c : counts_) max_count = std::max(max_count, c);
  std::ostringstream out;
  if (underflow_ > 0) out << "  < " << lo_ << ": " << underflow_ << '\n';
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    out << "  [" << bucket_lo(i) << ", " << bucket_hi(i) << "): " << counts_[i]
        << ' ' << bar(counts_[i], max_count, bar_width) << '\n';
  }
  if (overflow_ > 0) out << "  >= " << hi_ << ": " << overflow_ << '\n';
  return out.str();
}

void Log2Histogram::add(std::uint64_t x) noexcept {
  ++total_;
  max_value_ = std::max(max_value_, x);
  if (x == 0) {
    ++zero_;
    return;
  }
  const auto b = static_cast<std::size_t>(std::bit_width(x) - 1);
  if (b >= counts_.size()) counts_.resize(b + 1, 0);
  ++counts_[b];
}

std::string Log2Histogram::to_string(std::size_t bar_width) const {
  std::uint64_t max_count = zero_;
  for (auto c : counts_) max_count = std::max(max_count, c);
  std::ostringstream out;
  if (zero_ > 0) out << "  0: " << zero_ << ' ' << bar(zero_, max_count, bar_width) << '\n';
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    if (counts_[b] == 0) continue;
    out << "  [" << (1ULL << b) << ", " << (1ULL << (b + 1)) << "): "
        << counts_[b] << ' ' << bar(counts_[b], max_count, bar_width) << '\n';
  }
  return out.str();
}

}  // namespace arbmis::util
