#include "util/table.h"

#include <algorithm>
#include <cctype>
#include <cstdio>

namespace arbmis::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

Table& Table::row() {
  rows_.emplace_back();
  rows_.back().reserve(headers_.size());
  return *this;
}

Table& Table::cell(std::string value) {
  if (rows_.empty()) row();
  rows_.back().push_back(std::move(value));
  return *this;
}

Table& Table::cell(std::uint64_t value) { return cell(std::to_string(value)); }
Table& Table::cell(std::int64_t value) { return cell(std::to_string(value)); }

Table& Table::cell(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g", precision_, value);
  return cell(std::string(buf));
}

namespace {

bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!(std::isdigit(static_cast<unsigned char>(c)) || c == '.' || c == '-' ||
          c == '+' || c == 'e' || c == 'E' || c == '%')) {
      return false;
    }
  }
  return true;
}

std::string csv_escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

void Table::print(std::ostream& out) const {
  std::vector<std::size_t> widths(headers_.size(), 0);
  std::vector<bool> numeric(headers_.size(), true);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
      if (!looks_numeric(row[c])) numeric[c] = false;
    }
  }

  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& value = c < cells.size() ? cells[c] : std::string{};
      const std::size_t pad = widths[c] - std::min(widths[c], value.size());
      if (c > 0) out << "  ";
      if (numeric[c]) {
        out << std::string(pad, ' ') << value;
      } else {
        out << value << std::string(pad, ' ');
      }
    }
    out << '\n';
  };

  emit(headers_);
  std::size_t rule = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    rule += widths[c] + (c > 0 ? 2 : 0);
  }
  out << std::string(rule, '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

void Table::print_csv(std::ostream& out) const {
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c > 0) out << ',';
      out << csv_escape(cells[c]);
    }
    out << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

}  // namespace arbmis::util
