// Aligned-text + CSV table emitter. Every benchmark binary in bench/ builds
// its output through this type so that the experiment tables share one
// format (and can be diffed between runs or re-parsed from CSV).
#pragma once

#include <cstddef>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace arbmis::util {

/// Row-oriented table. All cells are formatted at insertion time; the
/// emitter only aligns and escapes.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  std::size_t num_columns() const noexcept { return headers_.size(); }
  std::size_t num_rows() const noexcept { return rows_.size(); }

  /// Begins a new row; subsequent add()/cell() calls fill it left to right.
  Table& row();

  Table& cell(std::string value);
  Table& cell(std::string_view value) { return cell(std::string(value)); }
  Table& cell(const char* value) { return cell(std::string(value)); }
  Table& cell(std::uint64_t value);
  Table& cell(std::int64_t value);
  Table& cell(int value) { return cell(static_cast<std::int64_t>(value)); }
  Table& cell(unsigned value) { return cell(static_cast<std::uint64_t>(value)); }
  /// Doubles use %.*g with the configured precision.
  Table& cell(double value);

  /// Digits of precision for double cells (default 5).
  void set_double_precision(int digits) noexcept { precision_ = digits; }

  /// Pretty-prints with a header rule and right-aligned numeric-looking
  /// columns.
  void print(std::ostream& out) const;

  /// RFC-4180-style CSV (quotes cells containing comma/quote/newline).
  void print_csv(std::ostream& out) const;

  const std::string& at(std::size_t row, std::size_t col) const {
    return rows_.at(row).at(col);
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
  int precision_ = 5;
};

}  // namespace arbmis::util
