// Small statistics toolkit used by the test suite and benchmark harness:
// streaming moments, order statistics, binomial confidence intervals, and
// least-squares fits for the round-complexity shape checks.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace arbmis::util {

/// Streaming mean/variance accumulator (Welford's algorithm).
class RunningStats {
 public:
  void add(double x) noexcept;

  std::uint64_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ > 0 ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept { return n_ > 0 ? min_ : 0.0; }
  double max() const noexcept { return n_ > 0 ? max_ : 0.0; }
  double sum() const noexcept { return sum_; }

  /// Merges another accumulator into this one (parallel Welford).
  void merge(const RunningStats& other) noexcept;

 private:
  // Fixed-width on purpose: std::size_t is 32 bits on some targets, and a
  // long Monte-Carlo sweep can exceed 2^32 samples.
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Quantile of a sample using linear interpolation between order statistics
/// (type-7, the numpy/R default). q in [0,1]. Empty input returns 0.
double quantile(std::span<const double> sorted_values, double q) noexcept;

/// Sorts a copy of `values` and returns the requested quantiles.
std::vector<double> quantiles(std::span<const double> values,
                              std::span<const double> qs);

/// Wilson score interval for a binomial proportion.
struct Interval {
  double lo = 0.0;
  double hi = 0.0;
  bool contains(double p) const noexcept { return p >= lo && p <= hi; }
};

/// `successes` out of `trials` with z-score `z` (1.96 ~ 95%, 3.29 ~ 99.9%).
Interval wilson_interval(std::uint64_t successes, std::uint64_t trials,
                         double z = 1.96) noexcept;

/// Ordinary least-squares fit y = slope*x + intercept.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  /// Coefficient of determination in [0,1]; 0 if undefined.
  double r_squared = 0.0;
};

LinearFit linear_fit(std::span<const double> xs,
                     std::span<const double> ys) noexcept;

/// Pearson correlation coefficient; 0 if undefined.
double correlation(std::span<const double> xs,
                   std::span<const double> ys) noexcept;

/// Natural-log factorial via lgamma; exact enough for bound computations.
double log_factorial(std::uint64_t n) noexcept;

/// log of the binomial coefficient C(n, k); -inf if k > n.
double log_binomial(std::uint64_t n, std::uint64_t k) noexcept;

/// Exact binomial lower-tail probability P[Bin(n, p) <= k], summed in log
/// space for numerical stability. Used as the independent-case reference
/// in read-k tail experiments.
double binomial_cdf(std::uint64_t k, std::uint64_t n, double p) noexcept;

}  // namespace arbmis::util
