// Histograms for experiment outputs: a fixed-width linear histogram and a
// power-of-two (log-bucket) histogram for heavy-tailed quantities such as
// bad-set component sizes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace arbmis::util {

/// Linear histogram over [lo, hi) with `buckets` equal-width cells plus
/// underflow/overflow counters.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x) noexcept;

  std::size_t bucket_count() const noexcept { return counts_.size(); }
  std::uint64_t bucket(std::size_t i) const noexcept { return counts_[i]; }
  double bucket_lo(std::size_t i) const noexcept;
  double bucket_hi(std::size_t i) const noexcept;
  std::uint64_t underflow() const noexcept { return underflow_; }
  std::uint64_t overflow() const noexcept { return overflow_; }
  std::uint64_t total() const noexcept { return total_; }

  /// Multi-line ASCII rendering (one row per non-empty bucket).
  std::string to_string(std::size_t bar_width = 40) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
};

/// Log2 histogram for nonnegative integers: bucket b counts values in
/// [2^b, 2^(b+1)), with a dedicated zero bucket.
class Log2Histogram {
 public:
  void add(std::uint64_t x) noexcept;

  std::uint64_t zero_count() const noexcept { return zero_; }
  std::size_t bucket_count() const noexcept { return counts_.size(); }
  std::uint64_t bucket(std::size_t b) const noexcept {
    return b < counts_.size() ? counts_[b] : 0;
  }
  std::uint64_t total() const noexcept { return total_; }
  std::uint64_t max_value() const noexcept { return max_value_; }

  std::string to_string(std::size_t bar_width = 40) const;

 private:
  std::uint64_t zero_ = 0;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
  std::uint64_t max_value_ = 0;
};

}  // namespace arbmis::util
