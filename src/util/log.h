// Minimal leveled logger for examples and the benchmark harness. Defaults
// to Info; benches flip to Warn to keep tables clean, examples flip to
// Debug when tracing.
#pragma once

#include <iostream>
#include <sstream>
#include <string_view>

namespace arbmis::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global threshold; messages below it are dropped.
LogLevel log_level() noexcept;
void set_log_level(LogLevel level) noexcept;

/// Observer for emitted log lines, called (in addition to the stderr
/// write) for every line that passes the level threshold. This is the
/// seam obs::ScopedSink uses to mirror log output into the telemetry
/// event stream without util depending on obs. Returns the previous hook
/// so scoped installers can restore it; pass nullptr to detach. The hook
/// may be invoked from any thread and must be thread-safe.
using LogEventHook = void (*)(LogLevel level, std::string_view message);
LogEventHook set_log_event_hook(LogEventHook hook) noexcept;

namespace detail {
void log_line(LogLevel level, std::string_view message);
}

/// Stream-style log statement: LOG(Info) << "x=" << x;
/// The right-hand side is only evaluated when the level is enabled.
class LogStatement {
 public:
  explicit LogStatement(LogLevel level) : level_(level) {}
  ~LogStatement() {
    if (enabled()) detail::log_line(level_, stream_.str());
  }
  LogStatement(const LogStatement&) = delete;
  LogStatement& operator=(const LogStatement&) = delete;

  bool enabled() const noexcept { return level_ >= log_level(); }

  template <typename T>
  LogStatement& operator<<(const T& value) {
    if (enabled()) stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace arbmis::util

#define ARBMIS_LOG(level) \
  ::arbmis::util::LogStatement(::arbmis::util::LogLevel::k##level)
