#include "util/log.h"

#include <atomic>

namespace arbmis::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kInfo};
std::atomic<LogEventHook> g_event_hook{nullptr};

constexpr std::string_view level_name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?    ";
}
}  // namespace

LogLevel log_level() noexcept { return g_level.load(std::memory_order_relaxed); }

void set_log_level(LogLevel level) noexcept {
  g_level.store(level, std::memory_order_relaxed);
}

LogEventHook set_log_event_hook(LogEventHook hook) noexcept {
  return g_event_hook.exchange(hook, std::memory_order_acq_rel);
}

namespace detail {
void log_line(LogLevel level, std::string_view message) {
  std::clog << '[' << level_name(level) << "] " << message << '\n';
  if (LogEventHook hook = g_event_hook.load(std::memory_order_acquire)) {
    hook(level, message);
  }
}
}  // namespace detail

}  // namespace arbmis::util
