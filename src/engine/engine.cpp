#include "engine/engine.h"

#include <algorithm>
#include <array>
#include <numeric>
#include <stdexcept>

#include "engine/internal.h"
#include "util/rng.h"

namespace arbmis::engine {

namespace {
constexpr std::array<EngineKind, 3> kAllEngines{
    EngineKind::kTestAndSet, EngineKind::kPrefixGreedy,
    EngineKind::kSequentialGreedy};

/// Domain-separation constant so engine priorities are not the same stream
/// as any other mix64(seed, v) user (e.g. fault plan coins).
constexpr std::uint64_t kPriorityDomain = 0x9d5c1f8a2e6b4703ULL;
}  // namespace

std::span<const EngineKind> all_engines() noexcept { return kAllEngines; }

std::string_view engine_name(EngineKind kind) noexcept {
  switch (kind) {
    case EngineKind::kTestAndSet:
      return "tas";
    case EngineKind::kPrefixGreedy:
      return "prefix";
    case EngineKind::kSequentialGreedy:
      return "greedy";
  }
  return "unknown";
}

std::uint64_t EngineResult::labels_hash() const noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a, matching the
  for (const std::uint8_t m : in_mis) {     // determinism pins' style
    h ^= m;
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::vector<std::uint64_t> node_priorities(std::uint64_t seed,
                                           graph::NodeId n) {
  std::vector<std::uint64_t> priority(n);
  const std::uint64_t base = util::mix64(seed, kPriorityDomain);
  for (graph::NodeId v = 0; v < n; ++v) {
    priority[v] = util::mix64(base, v);
  }
  return priority;
}

std::vector<graph::NodeId> priority_order(
    std::span<const std::uint64_t> priority) {
  std::vector<graph::NodeId> order(priority.size());
  std::iota(order.begin(), order.end(), graph::NodeId{0});
  std::sort(order.begin(), order.end(),
            [&](graph::NodeId a, graph::NodeId b) {
              return internal::less(priority, a, b);
            });
  return order;
}

EngineResult solve(graph::GraphView g, EngineKind kind,
                   const EngineOptions& options) {
  std::vector<std::uint64_t> priority;
  if (options.id_priorities) {
    priority.resize(g.num_nodes());
    std::iota(priority.begin(), priority.end(), std::uint64_t{0});
  } else {
    priority = node_priorities(options.seed, g.num_nodes());
  }
  switch (kind) {
    case EngineKind::kTestAndSet:
      return internal::solve_tas(g, options, priority);
    case EngineKind::kPrefixGreedy:
      return internal::solve_prefix(g, options, priority);
    case EngineKind::kSequentialGreedy:
      return internal::solve_greedy(g, priority);
  }
  throw std::invalid_argument("engine::solve: unknown EngineKind");
}

}  // namespace arbmis::engine
