// Internals shared by the engine family: the per-engine entry points the
// solve() dispatcher fans out to, the (priority, id) comparison every
// engine must break ties with, and the contiguous-range worker harness.
// Engine code only — hosts use engine/engine.h.
#pragma once

#include <cstdint>
#include <memory>
#include <span>

#include "engine/engine.h"
#include "graph/graph.h"
#include "sim/thread_pool.h"

namespace arbmis::engine::internal {

/// Strict weak order all engines agree on: priority ascending, node id as
/// the tiebreak. A node u "beats" v when less(u, v).
inline bool less(std::span<const std::uint64_t> priority, graph::NodeId u,
                 graph::NodeId v) noexcept {
  return priority[u] != priority[v] ? priority[u] < priority[v] : u < v;
}

/// Data-parallel harness over contiguous node ranges. 0 and 1 workers run
/// the body inline; otherwise a sim::ThreadPool executes one static range
/// per worker. Every phase dispatched through run_ranges() is a barrier:
/// the body must read only state written before the call and write only
/// slots no other range touches (or same-value relaxed atomics), which is
/// what makes the engines thread-count-invariant by construction.
class Workers {
 public:
  explicit Workers(std::uint32_t num_threads) {
    if (num_threads >= 2) {
      pool_ = std::make_unique<sim::ThreadPool>(num_threads);
    }
  }

  std::uint32_t count() const noexcept {
    return pool_ == nullptr ? 1 : pool_->num_workers();
  }

  /// Invokes body(begin, end) over a static partition of [0, n).
  template <typename Body>
  void run_ranges(graph::NodeId n, const Body& body) {
    if (pool_ == nullptr) {
      body(graph::NodeId{0}, n);
      return;
    }
    const std::uint64_t workers = pool_->num_workers();
    pool_->run([&](std::uint32_t w) {
      const auto begin = static_cast<graph::NodeId>(
          static_cast<std::uint64_t>(n) * w / workers);
      const auto end = static_cast<graph::NodeId>(
          static_cast<std::uint64_t>(n) * (w + 1) / workers);
      if (begin < end) body(begin, end);
    });
  }

 private:
  std::unique_ptr<sim::ThreadPool> pool_;
};

EngineResult solve_tas(graph::GraphView g, const EngineOptions& options,
                       std::span<const std::uint64_t> priority);
EngineResult solve_prefix(graph::GraphView g, const EngineOptions& options,
                          std::span<const std::uint64_t> priority);
EngineResult solve_greedy(graph::GraphView g,
                          std::span<const std::uint64_t> priority);

}  // namespace arbmis::engine::internal
