// Engine (c): sequential greedy reference oracle.
//
// One pass over the nodes in (priority, id) order; a node joins unless a
// neighbor already did. This is the definition of the lexicographically-
// first MIS the parallel engines must reproduce, and — handed the same
// order — it matches mis::greedy_mis(g, order) decision for decision (the
// engine-vs-simulator differential row in tests/test_engine.cpp).
#include <cstdint>
#include <vector>

#include "engine/engine.h"
#include "engine/internal.h"

namespace arbmis::engine::internal {

EngineResult solve_greedy(graph::GraphView g,
                          std::span<const std::uint64_t> priority) {
  EngineResult result;
  result.in_mis.assign(g.num_nodes(), 0);
  result.rounds = 1;
  std::vector<std::uint8_t> blocked(g.num_nodes(), 0);
  for (const graph::NodeId v : priority_order(priority)) {
    if (blocked[v] != 0) continue;
    result.in_mis[v] = 1;
    for (const graph::NodeId w : g.neighbors(v)) blocked[w] = 1;
  }
  return result;
}

}  // namespace arbmis::engine::internal
