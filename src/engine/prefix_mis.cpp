// Engine (b): priority/reservation-based parallel randomized greedy MIS
// with rootset-prefix processing (Blelloch et al., "Greedy sequential
// maximal independent set and matching are parallel on average"; depth
// bound by Fischer–Noever, arXiv:1707.05124).
//
// Nodes are sorted by (priority, id) and consumed in prefixes. Within the
// active prefix, a node is a *root* when every neighbor earlier in the
// order is already decided; roots join the MIS (no two adjacent nodes can
// both be roots) and cover their neighbors. Iterating rootsets until the
// prefix is fully decided reproduces, node for node, what sequential
// greedy over the same order decides — so the fixpoint is again the
// lexicographically-first MIS w.r.t. (priority, id), and the total rootset
// iteration count is the dependency depth of the greedy chain.
//
// Parallel phases read only the decided[] snapshot frozen at the previous
// barrier and write either their own slot or same-value relaxed covered
// marks, so the output is byte-identical across thread counts.
#include <algorithm>
#include <atomic>
#include <cstdint>
#include <vector>

#include "engine/engine.h"
#include "engine/internal.h"

namespace arbmis::engine::internal {

namespace {
enum : std::uint8_t { kUndecided = 0, kMember = 1, kCovered = 2 };
}  // namespace

EngineResult solve_prefix(graph::GraphView g, const EngineOptions& options,
                          std::span<const std::uint64_t> priority) {
  const graph::NodeId n = g.num_nodes();
  EngineResult result;
  result.in_mis.assign(n, 0);
  if (n == 0) return result;

  const std::vector<graph::NodeId> order = priority_order(priority);
  // rank[v] = position of v in the greedy order; the root test compares
  // ranks instead of re-deriving (priority, id) per edge.
  std::vector<std::uint32_t> rank(n);
  for (graph::NodeId i = 0; i < n; ++i) rank[order[i]] = i;

  std::vector<std::atomic<std::uint8_t>> decided(n);
  for (graph::NodeId v = 0; v < n; ++v) {
    decided[v].store(kUndecided, std::memory_order_relaxed);
  }
  std::vector<std::uint8_t> is_root(n, 0);

  const std::uint32_t prefix_size =
      options.prefix_size != 0
          ? options.prefix_size
          : std::max<std::uint32_t>(1024, n / 16);
  Workers workers(options.num_threads);

  for (graph::NodeId lo = 0; lo < n; lo += prefix_size) {
    const auto hi = static_cast<graph::NodeId>(std::min<std::uint64_t>(
        static_cast<std::uint64_t>(lo) + prefix_size, n));
    const graph::NodeId span = hi - lo;
    std::uint64_t undecided = 0;
    for (graph::NodeId i = lo; i < hi; ++i) {
      undecided +=
          decided[order[i]].load(std::memory_order_relaxed) == kUndecided;
    }
    while (undecided > 0) {
      ++result.rounds;

      // Rootset detection: i-th order slot is a root iff node order[i] is
      // undecided and no undecided neighbor precedes it in the order.
      // Reads the decided snapshot only; writes is_root[i - lo], own slot.
      workers.run_ranges(span, [&](graph::NodeId begin, graph::NodeId end) {
        for (graph::NodeId s = begin; s < end; ++s) {
          const graph::NodeId v = order[lo + s];
          if (decided[v].load(std::memory_order_relaxed) != kUndecided) {
            is_root[s] = 0;
            continue;
          }
          bool root = true;
          for (const graph::NodeId w : g.neighbors(v)) {
            if (rank[w] < rank[v] &&
                decided[w].load(std::memory_order_relaxed) == kUndecided) {
              root = false;
              break;
            }
          }
          is_root[s] = root ? 1 : 0;
        }
      });

      // Commit: roots join, neighbors get covered. A covered neighbor can
      // never already be a member (it would have covered the root first),
      // so the concurrent relaxed stores all write kCovered — same value.
      workers.run_ranges(span, [&](graph::NodeId begin, graph::NodeId end) {
        for (graph::NodeId s = begin; s < end; ++s) {
          if (is_root[s] == 0) continue;
          const graph::NodeId v = order[lo + s];
          result.in_mis[v] = 1;
          decided[v].store(kMember, std::memory_order_relaxed);
          for (const graph::NodeId w : g.neighbors(v)) {
            if (decided[w].load(std::memory_order_relaxed) == kUndecided) {
              decided[w].store(kCovered, std::memory_order_relaxed);
            }
          }
        }
      });

      undecided = 0;
      for (graph::NodeId i = lo; i < hi; ++i) {
        undecided +=
            decided[order[i]].load(std::memory_order_relaxed) == kUndecided;
      }
    }
  }
  return result;
}

}  // namespace arbmis::engine::internal
