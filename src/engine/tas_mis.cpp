// Engine (a): atomic test-and-set MIS.
//
// Round-synchronous local-minima elimination over static priorities: every
// alive node whose (priority, id) beats all alive neighbors joins the MIS
// and test-and-sets its neighborhood out of the alive set. Two adjacent
// nodes can never both be local minima, so joins are conflict-free; the
// only concurrent writes are same-value relaxed stores into the alive
// flags, which is why the engine is lock-free AND byte-identical across
// thread counts: each round's decisions read a snapshot frozen at the
// round barrier.
//
// Because priorities never change between rounds, the fixpoint is exactly
// the lexicographically-first MIS w.r.t. the (priority, id) order — the
// same set sequential greedy over that order produces — while the round
// count is the parallel dependency depth, O(log n) w.h.p. for random
// priorities (Fischer–Noever, arXiv:1707.05124).
//
// Dense remnant: once few nodes survive, rescanning their CSR adjacency
// per round touches mostly-dead neighbors. The engine then compacts the
// alive remnant into bitset adjacency rows and finishes with word-parallel
// neighborhood removal (alive &= ~row). The switch is a pure function of
// (alive count, options.dense_phase), so it cannot perturb determinism.
#include <algorithm>
#include <atomic>
#include <cstdint>
#include <vector>

#include "engine/engine.h"
#include "engine/internal.h"

namespace arbmis::engine::internal {

namespace {

/// Auto dense-phase ceiling: 4096 alive nodes is a 2 MiB bit matrix —
/// the most the compaction is ever worth. The per-run cutoff is
/// min(kDenseAutoCeiling, max(64, n/8)), so small graphs still exercise
/// the sparse parallel rounds instead of jumping straight to the serial
/// remnant.
constexpr std::uint64_t kDenseAutoCeiling = 4096;

/// Finishes the remnant on compacted bitset adjacency, serially (the
/// remnant is small by construction; forced mode guards its own sizes).
/// `alive` flags double as input and output: members are recorded in
/// `result`, every compacted node ends not-alive.
void finish_dense(graph::GraphView g, std::span<const std::uint64_t> priority,
                  std::vector<std::atomic<std::uint8_t>>& alive,
                  EngineResult& result) {
  std::vector<graph::NodeId> ids;
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    if (alive[v].load(std::memory_order_relaxed) != 0) ids.push_back(v);
  }
  const std::uint64_t a = ids.size();
  if (a == 0) return;
  const std::uint64_t words = (a + 63) / 64;

  // Dense index of each alive node; dead nodes keep a sentinel.
  std::vector<std::uint32_t> dense_index(g.num_nodes(), UINT32_MAX);
  for (std::uint64_t i = 0; i < a; ++i) dense_index[ids[i]] = static_cast<std::uint32_t>(i);

  // Adjacency rows restricted to the remnant.
  std::vector<std::uint64_t> rows(a * words, 0);
  for (std::uint64_t i = 0; i < a; ++i) {
    for (const graph::NodeId w : g.neighbors(ids[i])) {
      const std::uint32_t j = dense_index[w];
      if (j != UINT32_MAX) rows[i * words + j / 64] |= 1ULL << (j % 64);
    }
  }

  std::vector<std::uint64_t> live(words, 0);
  for (std::uint64_t i = 0; i < a; ++i) live[i / 64] |= 1ULL << (i % 64);
  std::vector<std::uint64_t> joined(words, 0);

  std::uint64_t remaining = a;
  while (remaining > 0) {
    ++result.rounds;
    std::fill(joined.begin(), joined.end(), 0);
    for (std::uint64_t wd = 0; wd < words; ++wd) {
      std::uint64_t bits = live[wd];
      while (bits != 0) {
        const auto bit = static_cast<std::uint64_t>(__builtin_ctzll(bits));
        bits &= bits - 1;
        const std::uint64_t i = wd * 64 + bit;
        const graph::NodeId v = ids[i];
        bool is_min = true;
        // Local-minimum test over the still-live neighborhood.
        for (std::uint64_t nw = 0; nw < words && is_min; ++nw) {
          std::uint64_t nb = rows[i * words + nw] & live[nw];
          while (nb != 0) {
            const auto nbit = static_cast<std::uint64_t>(__builtin_ctzll(nb));
            nb &= nb - 1;
            const graph::NodeId u = ids[nw * 64 + nbit];
            if (less(priority, u, v)) {
              is_min = false;
              break;
            }
          }
        }
        if (is_min) joined[wd] |= 1ULL << bit;
      }
    }
    // Commit: members leave with their whole neighborhood, word-parallel.
    for (std::uint64_t wd = 0; wd < words; ++wd) {
      std::uint64_t bits = joined[wd];
      while (bits != 0) {
        const auto bit = static_cast<std::uint64_t>(__builtin_ctzll(bits));
        bits &= bits - 1;
        const std::uint64_t i = wd * 64 + bit;
        result.in_mis[ids[i]] = 1;
        for (std::uint64_t nw = 0; nw < words; ++nw) {
          live[nw] &= ~rows[i * words + nw];
        }
        live[wd] &= ~(1ULL << bit);
      }
    }
    remaining = 0;
    for (const std::uint64_t wd : live) {
      remaining += static_cast<std::uint64_t>(__builtin_popcountll(wd));
    }
  }
  for (const graph::NodeId v : ids) {
    alive[v].store(0, std::memory_order_relaxed);
  }
}

}  // namespace

EngineResult solve_tas(graph::GraphView g, const EngineOptions& options,
                       std::span<const std::uint64_t> priority) {
  const graph::NodeId n = g.num_nodes();
  EngineResult result;
  result.in_mis.assign(n, 0);

  std::vector<std::atomic<std::uint8_t>> alive(n);
  for (graph::NodeId v = 0; v < n; ++v) {
    alive[v].store(1, std::memory_order_relaxed);
  }
  std::vector<std::uint8_t> joined(n, 0);

  Workers workers(options.num_threads);
  std::vector<std::uint64_t> range_counts(workers.count() + 1, 0);
  const std::uint64_t auto_cutoff = std::min<std::uint64_t>(
      kDenseAutoCeiling, std::max<std::uint64_t>(64, std::uint64_t{n} / 8));

  std::uint64_t alive_count = n;
  while (alive_count > 0) {
    const bool go_dense =
        options.dense_phase == 1 ||
        (options.dense_phase == 2 && alive_count <= auto_cutoff);
    if (go_dense) {
      finish_dense(g, priority, alive, result);
      break;
    }
    ++result.rounds;

    // Phase A (barrier before and after): local minima mark themselves.
    // Reads the alive snapshot only; writes joined[v], the writer's own
    // slot.
    workers.run_ranges(n, [&](graph::NodeId begin, graph::NodeId end) {
      for (graph::NodeId v = begin; v < end; ++v) {
        if (alive[v].load(std::memory_order_relaxed) == 0) {
          joined[v] = 0;
          continue;
        }
        bool is_min = true;
        for (const graph::NodeId w : g.neighbors(v)) {
          if (alive[w].load(std::memory_order_relaxed) != 0 &&
              less(priority, w, v)) {
            is_min = false;
            break;
          }
        }
        joined[v] = is_min ? 1 : 0;
      }
    });

    // Phase B: winners commit and test-and-set their neighborhood out of
    // the alive set. Concurrent exchanges write the same value (0), so
    // the final flags are schedule-independent.
    workers.run_ranges(n, [&](graph::NodeId begin, graph::NodeId end) {
      for (graph::NodeId v = begin; v < end; ++v) {
        if (joined[v] == 0) continue;
        result.in_mis[v] = 1;
        alive[v].store(0, std::memory_order_relaxed);
        for (const graph::NodeId w : g.neighbors(v)) {
          alive[w].exchange(0, std::memory_order_relaxed);
        }
      }
    });

    // Phase C: survivors census (per-worker slots summed at the barrier).
    std::fill(range_counts.begin(), range_counts.end(), 0);
    std::atomic<std::uint32_t> next_slot{0};
    workers.run_ranges(n, [&](graph::NodeId begin, graph::NodeId end) {
      std::uint64_t count = 0;
      for (graph::NodeId v = begin; v < end; ++v) {
        count += alive[v].load(std::memory_order_relaxed);
      }
      range_counts[next_slot.fetch_add(1, std::memory_order_relaxed)] =
          count;
    });
    alive_count = 0;
    for (const std::uint64_t c : range_counts) alive_count += c;
  }
  return result;
}

}  // namespace arbmis::engine::internal
