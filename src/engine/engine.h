// Shared-memory lock-free MIS engine family — the second execution model.
//
// The CONGEST simulator (sim/network.h) charges every algorithm per-message
// overhead that real shared-memory hardware does not pay; this module is
// the raw-speed ceiling it is measured against (DESIGN.md §8, EXPERIMENTS
// §E1). Three engines sit behind one `solve(GraphView, kind, options)`
// surface:
//
//   kTestAndSet       round-synchronous local-minima engine: every alive
//                     node with the smallest (priority, id) among its alive
//                     neighbors joins, then test-and-sets its neighbors out
//                     of the alive set with relaxed atomics. Dense remnants
//                     switch to bitset adjacency (word-parallel removal).
//   kPrefixGreedy     Blelloch-style rootset-prefix parallel randomized
//                     greedy (the algorithm Fischer–Noever prove runs in
//                     O(log n) dependency depth): nodes sorted by priority,
//                     processed in prefixes; within a prefix a node joins
//                     once every earlier-priority neighbor is decided.
//   kSequentialGreedy the reference oracle: plain sequential greedy over
//                     the priority order.
//
// Determinism contract. Priorities are a *pure function of (seed, node)* —
// one batched counter-based draw per node through util::mix64, no stateful
// generator — and every parallel phase reads only a snapshot written before
// the phase barrier, so the result is byte-identical for every thread
// count. Stronger still, all three engines compute the *same set*: the
// lexicographically-first MIS with respect to the (priority, id) order,
// i.e. exactly what sequential greedy over that order produces. The
// EngineEquivalence matrix in tests/test_engine.cpp enforces both claims,
// and golden labels-hash pins in tests/test_determinism.cpp freeze the
// bytes per seed.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "graph/graph.h"

namespace arbmis::engine {

enum class EngineKind : std::uint8_t {
  kTestAndSet = 0,
  kPrefixGreedy = 1,
  kSequentialGreedy = 2,
};

/// All engines, in declaration order (for test matrices and benches).
std::span<const EngineKind> all_engines() noexcept;

/// Stable lowercase name ("tas", "prefix", "greedy").
std::string_view engine_name(EngineKind kind) noexcept;

struct EngineOptions {
  std::uint64_t seed = 12345;

  /// Worker threads for the parallel engines; 0 and 1 both run serially
  /// (0 mirrors sim::NetworkOptions::num_threads' convention). The result
  /// is byte-identical across all values by construction.
  std::uint32_t num_threads = 0;

  /// Use node ids as priorities instead of seed-derived draws. With this
  /// set, every engine reproduces mis::greedy_mis(g)'s set exactly — the
  /// engine-vs-simulator differential row in tests/test_engine.cpp.
  bool id_priorities = false;

  /// kPrefixGreedy: nodes per rootset prefix; 0 = max(1024, n/16).
  std::uint32_t prefix_size = 0;

  /// kTestAndSet: compact the alive remnant into bitset adjacency once it
  /// is small enough for the bit matrix to stay cache-resident (auto mode
  /// switches at min(4096, max(64, n/8)) alive nodes). 0 disables the
  /// dense phase; 1 forces it from round one (tests pin equivalence of
  /// all three).
  std::uint32_t dense_phase = 2;  ///< 0 = off, 1 = forced, 2 = auto
};

struct EngineResult {
  /// Byte mask, 1 = member (uint8_t so it can feed mis::verify_mask).
  std::vector<std::uint8_t> in_mis;

  /// Fixpoint iterations (kTestAndSet), inner rootset iterations summed
  /// over prefixes (kPrefixGreedy), or 1 (kSequentialGreedy).
  std::uint64_t rounds = 0;

  std::uint64_t mis_size() const noexcept {
    std::uint64_t count = 0;
    for (const std::uint8_t m : in_mis) count += m;
    return count;
  }

  /// FNV-1a over the member mask — the byte-identity witness the
  /// cross-thread and golden-pin tests compare.
  std::uint64_t labels_hash() const noexcept;
};

/// Batched counter-based priority fill: priority[v] = mix64(seed', v),
/// a pure function of (seed, node) with no sequential generator state, so
/// the batch is trivially parallel and identical however it is chunked.
/// Ties (astronomically unlikely) break by node id everywhere.
std::vector<std::uint64_t> node_priorities(std::uint64_t seed,
                                           graph::NodeId n);

/// The processing order the priorities induce: node ids sorted by
/// (priority, id) ascending. This is the exact permutation kSequentialGreedy
/// scans — handing it to mis::greedy_mis must reproduce the engine's set.
std::vector<graph::NodeId> priority_order(
    std::span<const std::uint64_t> priority);

/// Runs one engine. Thread-count-invariant and a pure function of
/// (graph, kind, options.seed, options.id_priorities); the tuning knobs
/// (num_threads, prefix_size, dense_phase) must not change the set.
EngineResult solve(graph::GraphView g, EngineKind kind,
                   const EngineOptions& options = {});

}  // namespace arbmis::engine
