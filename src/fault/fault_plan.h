// FaultPlan — the deterministic, seeded FaultInjector behind
// NetworkOptions::fault.
//
// A plan is a pure function of (graph, seed, adversary):
//   * message fates come from stateless hash coins over (plan key, edge
//     slot, round) — evaluated concurrently by the parallel executor's
//     workers with no shared mutable state, which is what keeps faulty
//     runs byte-identical across thread counts;
//   * crash/recovery events are drawn from a dedicated Rng::child event
//     stream consumed serially at round barriers, in ascending node order;
//   * the adversary (fault/adversary.h) supplies the odds and the crash
//     targeting strategy, the plan supplies the mechanics (down set,
//     recovery schedule, per-round ledger).
//
// Reuse across runs mirrors Network's RNG discipline: begin_run resets the
// down set and the ledger but advances a run index mixed into the message
// coins and keeps consuming the same event stream, so a plan driving a
// multi-attempt pipeline injects fresh-but-reproducible faults each
// attempt.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "fault/adversary.h"
#include "graph/graph.h"
#include "sim/fault_hooks.h"
#include "util/rng.h"

namespace arbmis::fault {

/// Per-round fault ledger entry. Drops/duplicates are charged to the round
/// the message was *sent* in; crashes/recoveries to the barrier they
/// resolved at.
struct LedgerEntry {
  std::uint32_t round = 0;
  std::uint64_t drops = 0;
  std::uint64_t duplicates = 0;
  std::uint32_t crashes = 0;
  std::uint32_t recoveries = 0;

  bool operator==(const LedgerEntry&) const = default;
};

class FaultPlan final : public sim::FaultInjector {
 public:
  /// The adversary is borrowed and must outlive the plan; its bind() hook
  /// runs here so degree-aware strategies can precompute against `g`.
  FaultPlan(graph::GraphView g, std::uint64_t seed, Adversary& adversary);

  // FaultInjector hooks (called by sim::Network; see sim/fault_hooks.h).
  void begin_run() override;
  sim::RoundFaultEvents begin_round(
      std::uint32_t round, std::span<const std::uint8_t> halted) override;
  sim::FaultDecision on_message(graph::NodeId from, graph::NodeId to,
                                std::uint64_t edge_slot,
                                std::uint32_t round) const override;
  bool is_down(graph::NodeId v) const override { return down_[v] != 0; }
  graph::NodeId num_down() const override { return num_down_; }
  bool recovery_pending() const override { return pending_recoveries_ > 0; }
  void account(std::uint32_t round, std::uint64_t drops,
               std::uint64_t duplicates) override;
  sim::FaultTotals totals() const override { return totals_; }

  /// One entry per executed round of the latest run (round 0 = on_start).
  const std::vector<LedgerEntry>& ledger() const noexcept { return ledger_; }
  const Adversary& adversary() const noexcept { return *adversary_; }
  std::span<const std::uint8_t> down_mask() const noexcept { return down_; }

 private:
  static constexpr std::uint32_t kNever = ~std::uint32_t{0};
  // Rng::child stream ids for the plan's two randomness sources. Large
  // constants so they never collide with the simulator's per-node child
  // streams (node ids are dense from 0).
  static constexpr std::uint64_t kMessageStream = 0xFA171'0000'0001ULL;
  static constexpr std::uint64_t kEventStream = 0xFA171'0000'0002ULL;

  /// Stateless uniform [0, 1) coin for one message-fate test.
  double coin(std::uint64_t edge_slot, std::uint32_t round,
              std::uint64_t salt) const noexcept;

  graph::GraphView graph_;
  Adversary* adversary_;
  std::uint64_t message_key_ = 0;
  util::Rng event_rng_;
  std::uint64_t run_index_ = 0;  ///< bumped by begin_run, mixed into coins

  std::vector<std::uint8_t> down_;       ///< 1 = currently crashed
  std::vector<std::uint32_t> recover_at_;  ///< barrier round; kNever = none
  graph::NodeId num_down_ = 0;
  graph::NodeId pending_recoveries_ = 0;
  std::vector<graph::NodeId> crash_scratch_;

  std::vector<LedgerEntry> ledger_;
  sim::FaultTotals totals_;
};

}  // namespace arbmis::fault
