// ResilientMis — fault-tolerant MIS driver.
//
// Wraps any MIS algorithm and drives it to a *certified* MIS despite the
// faults a FaultPlan injects. The loop per attempt:
//
//   1. run the wrapped algorithm on the residual graph (the undecided
//      nodes) inside a Network wired to the attempt's fault plan;
//   2. certify the attempt's output fault-free with the existing
//      distributed verifier (mis/distributed_verify.h) on the residual —
//      labels produced under faults are never trusted directly;
//   3. commit exactly the members whose local verdict passed. Independence
//      inside the residual implies independence in the input graph,
//      because the residual excludes every neighbor of a previously
//      committed member. Coverage is then *recomputed* from the committed
//      set (a "covered" label from a faulty run proves nothing);
//   4. shrink the residual and repeat.
//
// Attempts from `fault_free_after` on run without faults, so the loop
// certifies a true MIS even under a 100% drop rate — that safety net is
// what the acceptance tests pin. The result reports rounds-to-recovery:
// total simulator rounds spent across attempts and verifications.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/params.h"
#include "fault/adversary.h"
#include "fault/fault_plan.h"
#include "graph/graph.h"
#include "mis/mis_types.h"
#include "sim/network.h"

namespace arbmis::fault {

/// One attempt of the wrapped algorithm: run on `g` inside `net` (already
/// wired to the attempt's fault plan) and return per-node labels indexed
/// by g's ids (kUndecided allowed). `stats` receives the attempt's stats.
using MisDriver = std::function<std::vector<mis::MisState>(
    graph::GraphView g, sim::Network& net, std::uint32_t max_rounds,
    sim::RunStats& stats)>;

/// Driver for any sim::Algorithm constructible from a const Graph& with a
/// states() accessor — LubyBMis, GhaffariMis, MetivierMis.
template <typename Algo>
MisDriver algorithm_driver() {
  return [](graph::GraphView g, sim::Network& net,
            std::uint32_t max_rounds, sim::RunStats& stats) {
    Algo algo(g);
    stats = net.run(algo, max_rounds);
    return algo.states();
  };
}

/// Driver running the paper's Algorithm 1 (BoundedArbIndependentSet with
/// Params::practical(alpha, Δ)). Bad/remaining nodes map to kUndecided and
/// are finished by the resilient retry loop — the role the finishing phase
/// plays in the paper. When a residual is too small for any scale to
/// execute (Θ = 0), the driver falls back to Luby B on the same network so
/// every attempt can make progress. `tuning` is forwarded to
/// Params::practical — benches lower shatter_constant so scales run on
/// workloads whose Δ sits below the default shattering regime.
MisDriver shatter_driver(graph::NodeId alpha,
                         core::PracticalTuning tuning = {});

struct ResilientOptions {
  std::uint32_t max_attempts = 10;
  /// Attempt index from which faults are disabled (safety net: guarantees
  /// progress even when the adversary drops everything).
  std::uint32_t fault_free_after = 6;
  std::uint32_t max_rounds_per_attempt = 1u << 16;
  std::uint32_t num_threads = 0;  ///< forwarded to every Network
};

struct AttemptReport {
  std::uint32_t attempt = 0;
  graph::NodeId residual_nodes = 0;  ///< size of the graph the attempt ran on
  graph::NodeId committed = 0;       ///< members certified and committed
  graph::NodeId covered = 0;         ///< newly covered by committed members
  bool faulty = false;               ///< faults enabled for this attempt
  sim::RunStats stats;               ///< the attempt's (possibly faulty) run
  sim::FaultTotals faults;           ///< what the plan injected
};

struct ResilientResult {
  std::vector<mis::MisState> state;  ///< final labels on the input graph
  /// Fault-free DistributedMisCheck passed on the full input graph.
  bool certified = false;
  std::uint32_t attempts = 0;
  /// Total simulator rounds to the certified output: every attempt's run
  /// plus every verification pass.
  std::uint32_t rounds_to_recovery = 0;
  sim::FaultTotals faults;  ///< summed over all attempts
  std::vector<AttemptReport> attempt_log;
};

/// Runs `driver` to a certified MIS on `g` under the faults `adversary`
/// injects (attempt k uses a FaultPlan seeded from (seed, k)).
ResilientResult resilient_mis(graph::GraphView g, std::uint64_t seed,
                              Adversary& adversary, const MisDriver& driver,
                              const ResilientOptions& options = {});

struct CertifyReport {
  bool certified = false;        ///< all local checks pass, no undecided
  std::uint32_t rounds = 0;      ///< verifier rounds spent
};

/// Fault-free distributed certification of a complete labeling on `g`:
/// every node's local DistributedMisCheck verdict passes and no node is
/// kUndecided. This is the independent acceptance check the serving layer
/// runs on the *full* graph after an incremental repair (docs/SERVING.md);
/// it lives here so serve/ never needs to include mis/ directly.
CertifyReport certify_labels(graph::GraphView g,
                             const std::vector<mis::MisState>& state,
                             std::uint64_t seed);

}  // namespace arbmis::fault
