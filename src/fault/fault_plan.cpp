#include "fault/fault_plan.h"

#include <algorithm>

#include "obs/sink.h"

namespace arbmis::fault {

FaultPlan::FaultPlan(graph::GraphView g, std::uint64_t seed,
                     Adversary& adversary)
    : graph_(g),
      adversary_(&adversary),
      message_key_(util::Rng(seed).child(kMessageStream).next()),
      event_rng_(util::Rng(seed).child(kEventStream)) {
  down_.assign(g.num_nodes(), 0);
  recover_at_.assign(g.num_nodes(), kNever);
  adversary_->bind(g);
}

void FaultPlan::begin_run() {
  ++run_index_;
  std::fill(down_.begin(), down_.end(), 0);
  std::fill(recover_at_.begin(), recover_at_.end(), kNever);
  num_down_ = 0;
  pending_recoveries_ = 0;
  ledger_.clear();
  totals_ = sim::FaultTotals{};
  adversary_->begin_run();
}

sim::RoundFaultEvents FaultPlan::begin_round(
    std::uint32_t round, std::span<const std::uint8_t> halted) {
  sim::RoundFaultEvents events;
  const graph::NodeId n = graph_.num_nodes();
  // Recoveries due at this barrier resolve before new crashes, so a node
  // can in principle recover and be re-crashed at the same barrier only
  // via an explicit adversary pick.
  // Both decision loops below run serially at the round barrier, so the
  // per-decision telemetry events are emitted in deterministic node order.
  if (pending_recoveries_ > 0) {
    for (graph::NodeId v = 0; v < n; ++v) {
      if (down_[v] != 0 && recover_at_[v] <= round) {
        down_[v] = 0;
        recover_at_[v] = kNever;
        --num_down_;
        --pending_recoveries_;
        ++events.recoveries;
        obs::emit(
            obs::make_event(obs::EventKind::kFaultRecovery, round, {}, v));
      }
    }
  }
  crash_scratch_.clear();
  const AdversaryView view{graph_, halted, down_};
  adversary_->pick_crashes(round, view, event_rng_, crash_scratch_);
  const std::uint32_t delay = adversary_->recovery_delay();
  for (graph::NodeId v : crash_scratch_) {
    // Contract: only still-running nodes crash (down ∩ halted = ∅), so
    // Network's termination test num_halted + num_down never double-counts.
    if (v >= n || down_[v] != 0 || halted[v] != 0) continue;
    down_[v] = 1;
    ++num_down_;
    ++events.crashes;
    if (delay > 0) {
      recover_at_[v] = round + delay;
      ++pending_recoveries_;
    }
    obs::emit(obs::make_event(obs::EventKind::kFaultCrash, round, {}, v,
                              delay > 0 ? recover_at_[v] : kNever));
  }
  totals_.crashes += events.crashes;
  totals_.recoveries += events.recoveries;
  ledger_.push_back(LedgerEntry{round, 0, 0, events.crashes,
                                events.recoveries});
  return events;
}

double FaultPlan::coin(std::uint64_t edge_slot, std::uint32_t round,
                       std::uint64_t salt) const noexcept {
  std::uint64_t h = util::mix64(message_key_ ^ run_index_, edge_slot);
  h = util::mix64(h, (static_cast<std::uint64_t>(round) << 2) | salt);
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

sim::FaultDecision FaultPlan::on_message(graph::NodeId from, graph::NodeId to,
                                         std::uint64_t edge_slot,
                                         std::uint32_t round) const {
  const MessageOdds odds = adversary_->message_odds(from, to, round);
  if (odds.drop > 0.0 && coin(edge_slot, round, 0) < odds.drop) {
    return sim::FaultDecision{0};
  }
  if (odds.duplicate > 0.0 && coin(edge_slot, round, 1) < odds.duplicate) {
    return sim::FaultDecision{2};
  }
  return sim::FaultDecision{1};
}

void FaultPlan::account(std::uint32_t round, std::uint64_t drops,
                        std::uint64_t duplicates) {
  if (ledger_.empty() || ledger_.back().round != round) {
    ledger_.push_back(LedgerEntry{round, 0, 0, 0, 0});
  }
  ledger_.back().drops = drops;
  ledger_.back().duplicates = duplicates;
  totals_.drops += drops;
  totals_.duplicates += duplicates;
}

}  // namespace arbmis::fault
