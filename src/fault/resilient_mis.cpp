#include "fault/resilient_mis.h"

#include "core/bounded_arb.h"
#include "core/params.h"
#include "mis/distributed_verify.h"
#include "mis/luby.h"
#include "obs/recorder.h"
#include "obs/sink.h"
#include "obs/span.h"

namespace arbmis::fault {

namespace {

/// Induced subgraph of the kept nodes, with the residual → input id map.
struct Residual {
  graph::Graph graph;
  std::vector<graph::NodeId> to_input;
};

Residual induced_subgraph(graph::GraphView g,
                          const std::vector<std::uint8_t>& keep) {
  const graph::NodeId n = g.num_nodes();
  Residual res;
  std::vector<graph::NodeId> to_sub(n, 0);
  for (graph::NodeId v = 0; v < n; ++v) {
    if (keep[v] == 0) continue;
    to_sub[v] = static_cast<graph::NodeId>(res.to_input.size());
    res.to_input.push_back(v);
  }
  graph::Builder builder(static_cast<graph::NodeId>(res.to_input.size()));
  for (graph::NodeId v = 0; v < n; ++v) {
    if (keep[v] == 0) continue;
    for (graph::NodeId w : g.neighbors(v)) {
      if (w > v && keep[w] != 0) builder.add_edge(to_sub[v], to_sub[w]);
    }
  }
  res.graph = builder.build();
  return res;
}

}  // namespace

MisDriver shatter_driver(graph::NodeId alpha, core::PracticalTuning tuning) {
  return [alpha, tuning](graph::GraphView g, sim::Network& net,
                         std::uint32_t max_rounds, sim::RunStats& stats) {
    std::vector<mis::MisState> labels(g.num_nodes(),
                                      mis::MisState::kUndecided);
    if (g.num_edges() == 0) {
      // Edgeless residual: every node is trivially in the MIS.
      std::fill(labels.begin(), labels.end(), mis::MisState::kInMis);
      stats = sim::RunStats{};
      stats.all_halted = true;
      return labels;
    }
    const core::Params params =
        core::Params::practical(alpha, g.max_degree(), tuning);
    bool any_member = false;
    if (params.num_scales > 0) {
      core::BoundedArbIndependentSet algo(g, params);
      stats = net.run(algo,
                      std::min(max_rounds, params.total_rounds() + 2));
      for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
        switch (algo.outcomes()[v]) {
          case core::ArbOutcome::kInMis:
            labels[v] = mis::MisState::kInMis;
            any_member = true;
            break;
          case core::ArbOutcome::kCovered:
            labels[v] = mis::MisState::kCovered;
            break;
          default:  // active / bad / remaining: finish in a later attempt
            break;
        }
      }
    } else {
      stats = sim::RunStats{};
      stats.all_halted = true;
    }
    if (!any_member) {
      // Θ = 0 (residual below the shattering regime) or faults wiped the
      // run: fall back to Luby B so the attempt still makes progress.
      mis::LubyBMis luby(g);
      stats.absorb(net.run(luby, max_rounds));
      labels = luby.states();
    }
    return labels;
  };
}

ResilientResult resilient_mis(graph::GraphView g, std::uint64_t seed,
                              Adversary& adversary, const MisDriver& driver,
                              const ResilientOptions& options) {
  // Child span: emits only inside an open request span (serving path), so
  // standalone resilient runs keep their pre-span event streams.
  const obs::ScopedChildSpan span("fault.resilient_mis", g.num_nodes());
  const graph::NodeId n = g.num_nodes();
  ResilientResult result;
  result.state.assign(n, mis::MisState::kUndecided);
  std::vector<std::uint8_t> undecided(n, 1);
  graph::NodeId undecided_count = n;
  const util::Rng seed_tree(seed);

  for (std::uint32_t attempt = 0;
       attempt < options.max_attempts && undecided_count > 0; ++attempt) {
    const Residual res = induced_subgraph(g, undecided);
    const std::uint64_t attempt_seed = seed_tree.child(attempt).next();
    const bool faulty = attempt < options.fault_free_after;

    AttemptReport rep;
    rep.attempt = attempt;
    rep.residual_nodes = res.graph.num_nodes();
    rep.faulty = faulty;

    std::vector<mis::MisState> labels;
    {
      FaultPlan plan(res.graph, attempt_seed, adversary);
      sim::NetworkOptions net_options;
      net_options.num_threads = options.num_threads;
      if (faulty) net_options.fault = &plan;
      sim::Network net(res.graph, attempt_seed, net_options);
      labels = driver(res.graph, net, options.max_rounds_per_attempt,
                      rep.stats);
      if (faulty) rep.faults = plan.totals();
    }

    // Certify fault-free within the residual; only verified members are
    // trusted. Two adjacent members both fail their local check, so the
    // committed set is independent by construction of the verifier.
    const mis::DistributedMisCheck::Result check =
        mis::DistributedMisCheck::run(res.graph, labels, attempt_seed);
    result.rounds_to_recovery += rep.stats.rounds + check.stats.rounds;

    for (graph::NodeId s = 0; s < res.graph.num_nodes(); ++s) {
      if (labels[s] != mis::MisState::kInMis || check.local_ok[s] == 0) {
        continue;
      }
      const graph::NodeId v = res.to_input[s];
      result.state[v] = mis::MisState::kInMis;
      undecided[v] = 0;
      --undecided_count;
      ++rep.committed;
    }
    // Coverage is recomputed from the committed members, never taken from
    // the faulty run's labels.
    for (graph::NodeId s = 0; s < res.graph.num_nodes(); ++s) {
      const graph::NodeId v = res.to_input[s];
      if (result.state[v] != mis::MisState::kInMis) continue;
      for (graph::NodeId w : g.neighbors(v)) {
        if (undecided[w] != 0) {
          result.state[w] = mis::MisState::kCovered;
          undecided[w] = 0;
          --undecided_count;
          ++rep.covered;
        }
      }
    }

    result.faults.drops += rep.faults.drops;
    result.faults.duplicates += rep.faults.duplicates;
    result.faults.crashes += rep.faults.crashes;
    result.faults.recoveries += rep.faults.recoveries;
    obs::emit(obs::make_event(obs::EventKind::kAttempt, /*round=*/0, {},
                              rep.attempt, rep.residual_nodes, rep.committed,
                              rep.covered, rep.faulty ? 1 : 0,
                              rep.stats.rounds));
    result.attempt_log.push_back(rep);
    ++result.attempts;
  }

  // Final fault-free certification on the full input graph.
  const mis::DistributedMisCheck::Result final_check =
      mis::DistributedMisCheck::run(g, result.state, seed);
  result.rounds_to_recovery += final_check.stats.rounds;
  result.certified = final_check.all_ok && undecided_count == 0;
  obs::emit(obs::make_event(obs::EventKind::kCertified, /*round=*/0, {},
                            result.certified ? 1 : 0, result.attempts,
                            result.rounds_to_recovery));
  if (!result.certified) {
    // Failure seam: preserve the events leading up to the failed
    // certification while they are still in the ring.
    obs::recorder_auto_dump("certification_failure");
  }
  return result;
}

CertifyReport certify_labels(graph::GraphView g,
                             const std::vector<mis::MisState>& state,
                             std::uint64_t seed) {
  CertifyReport report;
  if (state.size() != g.num_nodes()) return report;
  for (const mis::MisState s : state) {
    if (s == mis::MisState::kUndecided) return report;
  }
  const mis::DistributedMisCheck::Result check =
      mis::DistributedMisCheck::run(g, state, seed);
  report.rounds = check.stats.rounds;
  report.certified = check.all_ok;
  return report;
}

}  // namespace arbmis::fault
