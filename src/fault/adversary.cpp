#include "fault/adversary.h"

#include <algorithm>

namespace arbmis::fault {

namespace {

/// Appends every still-running node that flips the crash coin. Draws one
/// coin per eligible node in ascending id order, so the event stream's
/// consumption is a deterministic function of the barrier snapshot.
void iid_crashes(double rate, const AdversaryView& view, util::Rng& rng,
                 std::vector<graph::NodeId>& out) {
  if (rate <= 0.0) return;
  const graph::NodeId n = view.graph.num_nodes();
  for (graph::NodeId v = 0; v < n; ++v) {
    if (view.halted[v] != 0 || view.down[v] != 0) continue;
    if (rng.bernoulli(rate)) out.push_back(v);
  }
}

}  // namespace

MessageOdds IidAdversary::message_odds(graph::NodeId /*from*/,
                                       graph::NodeId /*to*/,
                                       std::uint32_t /*round*/) const {
  return {options_.drop_rate, options_.duplicate_rate};
}

void IidAdversary::pick_crashes(std::uint32_t /*round*/,
                                const AdversaryView& view, util::Rng& rng,
                                std::vector<graph::NodeId>& out) {
  iid_crashes(options_.crash_rate, view, rng, out);
}

bool BurstyAdversary::in_burst(std::uint32_t round) const noexcept {
  const std::uint32_t period = std::max(options_.period, 1u);
  return (round % period) < options_.burst_rounds;
}

MessageOdds BurstyAdversary::message_odds(graph::NodeId /*from*/,
                                          graph::NodeId /*to*/,
                                          std::uint32_t round) const {
  return {in_burst(round) ? options_.burst_drop_rate
                          : options_.base_drop_rate,
          options_.duplicate_rate};
}

void BurstyAdversary::pick_crashes(std::uint32_t round,
                                   const AdversaryView& view, util::Rng& rng,
                                   std::vector<graph::NodeId>& out) {
  if (!in_burst(round)) return;
  iid_crashes(options_.crash_rate, view, rng, out);
}

void AdaptiveAdversary::bind(graph::GraphView g) {
  const graph::NodeId n = g.num_nodes();
  targeted_.assign(n, 0);
  if (n == 0) return;
  // Target the top `degree_fraction` of nodes by degree (at least one).
  std::vector<graph::NodeId> degrees(n);
  for (graph::NodeId v = 0; v < n; ++v) degrees[v] = g.degree(v);
  std::vector<graph::NodeId> sorted = degrees;
  std::sort(sorted.begin(), sorted.end(), std::greater<>());
  const double want =
      std::clamp(options_.degree_fraction, 0.0, 1.0) * static_cast<double>(n);
  const auto count = std::max<std::size_t>(
      1, static_cast<std::size_t>(want));
  const graph::NodeId threshold = sorted[std::min<std::size_t>(count, n) - 1];
  for (graph::NodeId v = 0; v < n; ++v) {
    targeted_[v] = (degrees[v] >= threshold) ? 1 : 0;
  }
}

MessageOdds AdaptiveAdversary::message_odds(graph::NodeId /*from*/,
                                            graph::NodeId to,
                                            std::uint32_t /*round*/) const {
  return {targeted(to) ? options_.drop_rate : options_.background_drop_rate,
          options_.duplicate_rate};
}

void AdaptiveAdversary::pick_crashes(std::uint32_t round,
                                     const AdversaryView& view,
                                     util::Rng& /*rng*/,
                                     std::vector<graph::NodeId>& out) {
  if (options_.crash_period == 0 || crashes_spent_ >= options_.max_crashes) {
    return;
  }
  if (round % options_.crash_period != 0) return;
  // Highest-degree node that is still running; ties break to the lowest
  // id. Pure function of the barrier snapshot — no coin needed.
  const graph::NodeId n = view.graph.num_nodes();
  graph::NodeId best = n;
  graph::NodeId best_degree = 0;
  for (graph::NodeId v = 0; v < n; ++v) {
    if (view.halted[v] != 0 || view.down[v] != 0) continue;
    const graph::NodeId d = view.graph.degree(v);
    if (best == n || d > best_degree) {
      best = v;
      best_degree = d;
    }
  }
  if (best == n) return;
  out.push_back(best);
  ++crashes_spent_;
}

}  // namespace arbmis::fault
