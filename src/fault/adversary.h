// Pluggable fault adversaries for the deterministic fault-injection
// subsystem (src/fault/).
//
// An Adversary is a pure strategy: it decides the *odds* a message is
// dropped or duplicated and which nodes crash at a round barrier. The
// mechanics — hash coins, the down set, recovery schedules, the ledger —
// live in FaultPlan (fault/fault_plan.h), so adversaries stay small and a
// plan remains a pure function of (graph, seed, adversary).
//
// Three strategies ship with the subsystem:
//   * IidAdversary      — oblivious i.i.d. rates per message / per node;
//   * BurstyAdversary   — periodic bursts of elevated loss (and crashes);
//   * AdaptiveAdversary — targets high-degree, still-active nodes: drops
//     preferentially on edges into the top-degree set and spends a crash
//     budget on the highest-degree node that is still running. It reacts
//     only to the barrier snapshot (halted/down masks), which is itself
//     deterministic, so adaptivity never breaks reproducibility.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "graph/graph.h"
#include "util/rng.h"

namespace arbmis::fault {

/// Per-message fault odds, probabilities in [0, 1]. A message is first
/// tested for dropping; a surviving message is tested for duplication
/// (delivered twice).
struct MessageOdds {
  double drop = 0.0;
  double duplicate = 0.0;
};

/// Read-only barrier snapshot an adversary may react to. Everything here
/// is deterministic, so reacting to it preserves run determinism.
struct AdversaryView {
  graph::GraphView graph{};
  std::span<const std::uint8_t> halted;  ///< 1 = halted
  std::span<const std::uint8_t> down;    ///< 1 = currently crashed
};

/// Strategy interface consumed by FaultPlan. Implementations must be
/// deterministic: all randomness comes from the hash coins FaultPlan
/// derives (message fates) or from the serial event stream passed to
/// pick_crashes.
class Adversary {
 public:
  virtual ~Adversary() = default;

  virtual std::string_view name() const = 0;

  /// Message-fate odds for one send. Must be pure (const, thread-safe):
  /// workers of the parallel executor evaluate it concurrently, and
  /// determinism across thread counts requires value semantics.
  virtual MessageOdds message_odds(graph::NodeId from, graph::NodeId to,
                                   std::uint32_t round) const = 0;

  /// Appends nodes to crash at this barrier. FaultPlan filters out halted
  /// and already-down picks; `rng` is the plan's serial event stream
  /// (consumed at barriers only, so draws are executor-independent).
  virtual void pick_crashes(std::uint32_t round, const AdversaryView& view,
                            util::Rng& rng,
                            std::vector<graph::NodeId>& out) = 0;

  /// Rounds until a crashed node recovers (0 = crashes are permanent).
  virtual std::uint32_t recovery_delay() const { return 0; }

  /// Called once by FaultPlan's constructor; degree-aware adversaries
  /// precompute their target sets here.
  virtual void bind(graph::GraphView g) { (void)g; }

  /// Called by FaultPlan::begin_run; stateful adversaries (crash budgets)
  /// reset here so a plan replays identically run after run.
  virtual void begin_run() {}
};

/// Oblivious i.i.d. adversary: every message is dropped/duplicated with a
/// fixed rate, every still-running node crashes with a fixed per-round
/// rate.
struct IidOptions {
  double drop_rate = 0.0;
  double duplicate_rate = 0.0;
  double crash_rate = 0.0;           ///< per still-running node, per round
  std::uint32_t recovery_delay = 0;  ///< 0 = permanent crashes
};

class IidAdversary final : public Adversary {
 public:
  explicit IidAdversary(IidOptions options) : options_(options) {}

  std::string_view name() const override { return "iid"; }
  MessageOdds message_odds(graph::NodeId from, graph::NodeId to,
                           std::uint32_t round) const override;
  void pick_crashes(std::uint32_t round, const AdversaryView& view,
                    util::Rng& rng,
                    std::vector<graph::NodeId>& out) override;
  std::uint32_t recovery_delay() const override {
    return options_.recovery_delay;
  }

 private:
  IidOptions options_;
};

/// Bursty adversary: the first `burst_rounds` rounds of every `period`
/// rounds run at the elevated burst rates (message loss and crashes);
/// outside bursts only the base drop rate applies.
struct BurstyOptions {
  double base_drop_rate = 0.0;
  double burst_drop_rate = 0.5;
  std::uint32_t period = 8;        ///< rounds per cycle (clamped to >= 1)
  std::uint32_t burst_rounds = 2;  ///< leading rounds of a cycle that burst
  double duplicate_rate = 0.0;
  double crash_rate = 0.0;  ///< per still-running node, burst rounds only
  std::uint32_t recovery_delay = 0;
};

class BurstyAdversary final : public Adversary {
 public:
  explicit BurstyAdversary(BurstyOptions options) : options_(options) {}

  std::string_view name() const override { return "bursty"; }
  MessageOdds message_odds(graph::NodeId from, graph::NodeId to,
                           std::uint32_t round) const override;
  void pick_crashes(std::uint32_t round, const AdversaryView& view,
                    util::Rng& rng,
                    std::vector<graph::NodeId>& out) override;
  std::uint32_t recovery_delay() const override {
    return options_.recovery_delay;
  }
  bool in_burst(std::uint32_t round) const noexcept;

 private:
  BurstyOptions options_;
};

/// Adaptive adversary targeting high-degree, still-active nodes.
struct AdaptiveOptions {
  double drop_rate = 0.25;  ///< on edges *into* targeted (top-degree) nodes
  double background_drop_rate = 0.0;  ///< on every other edge
  double duplicate_rate = 0.0;
  std::uint32_t crash_period = 4;  ///< crash a target every this many rounds
                                   ///< (0 = never crash)
  std::uint32_t max_crashes = 4;   ///< total crash budget per run
  std::uint32_t recovery_delay = 0;
  double degree_fraction = 0.25;  ///< top fraction of degrees targeted
};

class AdaptiveAdversary final : public Adversary {
 public:
  explicit AdaptiveAdversary(AdaptiveOptions options) : options_(options) {}

  std::string_view name() const override { return "adaptive"; }
  MessageOdds message_odds(graph::NodeId from, graph::NodeId to,
                           std::uint32_t round) const override;
  void pick_crashes(std::uint32_t round, const AdversaryView& view,
                    util::Rng& rng,
                    std::vector<graph::NodeId>& out) override;
  std::uint32_t recovery_delay() const override {
    return options_.recovery_delay;
  }
  void bind(graph::GraphView g) override;
  void begin_run() override { crashes_spent_ = 0; }

  bool targeted(graph::NodeId v) const noexcept {
    return v < targeted_.size() && targeted_[v] != 0;
  }

 private:
  AdaptiveOptions options_;
  std::vector<std::uint8_t> targeted_;  ///< precomputed in bind()
  std::uint32_t crashes_spent_ = 0;
};

}  // namespace arbmis::fault
