// Ghaffari's MIS algorithm (SODA 2016), the algorithm the paper's §1.2
// concedes dominates its own bound: each node maintains a desire-level
// p_t(v), initially 1/2; in each iteration it gets marked with probability
// p_t(v) and joins the MIS if it is marked and no neighbor is marked. The
// desire-level halves when the neighborhood's aggregate desire
// d_t(v) = Σ_{u ∈ N(v)} p_t(u) is at least 2 and (at most) doubles
// otherwise, capped at 1/2. Runs in O(log Δ) + 2^O(√(log log n)) rounds whp
// (the local complexity part; the shattered remainder is finished by the
// same machinery the rest of this repository provides).
//
// Desire-levels are always powers of two, so the CONGEST message carries
// only the exponent.
//
// Round layout (3 rounds per iteration): kDesire -> kMark -> kJoined
// resolution folded into the next kDesire round.
#pragma once

#include <cstdint>
#include <vector>

#include "mis/mis_types.h"
#include "sim/algorithm.h"
#include "sim/network.h"

namespace arbmis::mis {

class GhaffariMis : public sim::Algorithm {
 public:
  explicit GhaffariMis(graph::GraphView g);

  std::string_view name() const override { return "ghaffari"; }
  void on_start(sim::NodeContext& ctx) override;
  void on_round(sim::NodeContext& ctx,
                std::span<const sim::Message> inbox) override;

  const std::vector<MisState>& states() const noexcept { return state_; }

  static MisResult run(graph::GraphView g, std::uint64_t seed,
                       std::uint32_t max_rounds = 1 << 20);

 private:
  enum Tag : std::uint32_t { kDesire = 1, kMark = 2, kJoined = 3 };
  enum class Phase : std::uint8_t { kSumDesires, kResolveMarks };

  void begin_iteration(sim::NodeContext& ctx);

  std::vector<MisState> state_;
  std::vector<Phase> phase_;
  /// Desire-level exponent e; p = 2^-e, e >= 1.
  std::vector<std::uint32_t> desire_exponent_;
  std::vector<std::uint8_t> marked_;  // byte-wide: written concurrently per node
};

}  // namespace arbmis::mis
