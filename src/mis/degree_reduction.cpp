#include "mis/degree_reduction.h"

#include <algorithm>

#include "mis/metivier.h"

namespace arbmis::mis {

std::uint64_t finalize_partial(graph::GraphView g,
                               std::vector<MisState>& state) {
  std::uint64_t flushed = 0;
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    if (state[v] != MisState::kUndecided) continue;
    for (graph::NodeId w : g.neighbors(v)) {
      if (state[w] == MisState::kInMis) {
        state[v] = MisState::kCovered;
        ++flushed;
        break;
      }
    }
  }
  return flushed;
}

std::uint32_t degree_reduction_budget(graph::NodeId n, double c) noexcept {
  if (n < 4) return 1;
  const double log_n = std::log2(static_cast<double>(n));
  const double log_log_n = std::max(std::log2(log_n), 1.0);
  return static_cast<std::uint32_t>(std::ceil(c * std::sqrt(log_n * log_log_n)));
}

DegreeReductionResult degree_reduction(graph::GraphView g,
                                       std::uint32_t round_budget,
                                       std::uint64_t seed) {
  DegreeReductionResult result;
  MisResult partial = MetivierMis::run(g, seed, {}, round_budget);
  result.stats = partial.stats;
  result.stats.rounds += 1;  // the finalize flush round
  result.state = std::move(partial.state);
  finalize_partial(g, result.state);

  result.residual_mask.assign(g.num_nodes(), false);
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    result.residual_mask[v] = (result.state[v] == MisState::kUndecided) ? 1 : 0;
  }
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    if (result.residual_mask[v] == 0) continue;
    ++result.residual_nodes;
    graph::NodeId residual_degree = 0;
    for (graph::NodeId w : g.neighbors(v)) {
      residual_degree += result.residual_mask[w] ? 1 : 0;
    }
    result.residual_max_degree =
        std::max(result.residual_max_degree, residual_degree);
  }
  return result;
}

}  // namespace arbmis::mis
