// The Métivier–Robson–Saheb-Djahromi–Zemmari random-priority MIS algorithm
// (SIROCCO 2009) — the competition engine at the heart of every shattering
// algorithm in the paper (§1): in each iteration every active node draws a
// priority and joins the MIS iff its priority strictly beats all active
// neighbors; MIS nodes and their neighbors leave the graph.
//
// Luby's Algorithm A (priorities from {1, ..., n^4}) is the same protocol
// with a discrete priority range, exposed here via Options::priority_range.
//
// Round layout: the protocol is fully pipelined at one round per
// iteration. In round t every active node (1) covers and halts if a
// neighbor announced kJoined in round t-1, else (2) resolves the
// competition among the priorities drawn in round t-1 — a strict local
// maximum joins the MIS, announces kJoined, and halts — and (3) losers
// draw and broadcast the next priority. Covering is checked before
// resolving, which makes adjacent wins in consecutive rounds impossible;
// a covered node's final in-flight priority can only cause a neighbor to
// lose one extra iteration, never a conflict.
#pragma once

#include <vector>

#include "mis/mis_types.h"
#include "sim/algorithm.h"
#include "sim/network.h"

namespace arbmis::mis {

/// Options for MetivierMis (namespace scope so it can carry default
/// member initializers and still be a default argument — GCC rejects that
/// combination for nested classes).
struct MetivierOptions {
  /// 0 = continuous priorities (full 64-bit draws, Métivier et al.);
  /// k > 0 = uniform integer priorities from {1, ..., k} (Luby A uses
  /// n^4). Ties never win, matching both papers.
  std::uint64_t priority_range = 0;
};

class MetivierMis : public sim::Algorithm {
 public:
  using Options = MetivierOptions;

  explicit MetivierMis(graph::GraphView g, Options options = {});

  std::string_view name() const override { return "metivier"; }
  void on_start(sim::NodeContext& ctx) override;
  void on_round(sim::NodeContext& ctx,
                std::span<const sim::Message> inbox) override;

  const std::vector<MisState>& states() const noexcept { return state_; }

  /// Runs to completion on a fresh network and packages the result.
  static MisResult run(graph::GraphView g, std::uint64_t seed,
                       Options options = {},
                       std::uint32_t max_rounds = 1 << 20);

 private:
  enum Tag : std::uint32_t { kPriority = 1, kJoined = 2 };

  void start_iteration(sim::NodeContext& ctx);

  Options options_;
  std::vector<MisState> state_;
  std::vector<std::uint64_t> my_priority_;
};

/// Convenience wrapper running Luby's Algorithm A: MetivierMis with integer
/// priorities from {1, ..., n^4}.
MisResult luby_a_mis(graph::GraphView g, std::uint64_t seed,
                     std::uint32_t max_rounds = 1 << 20);

}  // namespace arbmis::mis
