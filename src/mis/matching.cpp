#include "mis/matching.h"

namespace arbmis::mis {

std::uint64_t MatchingResult::num_matched_edges() const noexcept {
  std::uint64_t endpoints = 0;
  for (graph::NodeId p : partner) endpoints += (p != kUnmatched);
  return endpoints / 2;
}

bool verify_maximal_matching(graph::GraphView g,
                             const MatchingResult& result) {
  const auto& partner = result.partner;
  if (partner.size() != g.num_nodes()) return false;
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    const graph::NodeId p = partner[v];
    if (p == kUnmatched) continue;
    if (p >= g.num_nodes() || partner[p] != v || !g.has_edge(v, p)) {
      return false;
    }
  }
  // Maximality: every edge has a matched endpoint.
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    if (partner[v] != kUnmatched) continue;
    for (graph::NodeId w : g.neighbors(v)) {
      if (partner[w] == kUnmatched) return false;
    }
  }
  return true;
}

IsraeliItaiMatching::IsraeliItaiMatching(graph::GraphView g)
    : graph_(g),
      partner_(g.num_nodes(), kUnmatched),
      is_sender_(g.num_nodes(), false) {}

void IsraeliItaiMatching::on_start(sim::NodeContext& ctx) {
  if (ctx.degree() == 0) {
    ctx.halt();
    return;
  }
  ctx.broadcast(kAlive, 0);
}

void IsraeliItaiMatching::on_round(sim::NodeContext& ctx,
                                   std::span<const sim::Message> inbox) {
  const graph::NodeId v = ctx.id();
  switch (ctx.round() % 3) {
    case 1: {  // Propose phase: inbox holds kAlive.
      std::vector<graph::NodeId> active_ports;
      for (const sim::Message& m : inbox) {
        if (m.tag == kAlive) {
          active_ports.push_back(graph_.port_of(v, m.src));
        }
      }
      if (active_ports.empty()) {
        ctx.halt();  // unmatched, and no neighbor can ever match with us
        return;
      }
      is_sender_[v] = ctx.rng().bernoulli(0.5);
      if (is_sender_[v]) {
        const graph::NodeId port =
            active_ports[ctx.rng().below(active_ports.size())];
        ctx.send(port, kPropose, 0);
      }
      return;
    }
    case 2: {  // Resolve phase: receivers accept one proposal.
      if (is_sender_[v]) return;
      std::vector<const sim::Message*> proposals;
      for (const sim::Message& m : inbox) {
        if (m.tag == kPropose) proposals.push_back(&m);
      }
      if (proposals.empty()) return;
      const sim::Message& chosen =
          *proposals[ctx.rng().below(proposals.size())];
      partner_[v] = chosen.src;
      ctx.send(graph_.port_of(v, chosen.src), kAccept, 0);
      ctx.halt();
      return;
    }
    case 0: {  // Alive phase: senders read acceptances, survivors re-arm.
      for (const sim::Message& m : inbox) {
        if (m.tag == kAccept) {
          partner_[v] = m.src;
          ctx.halt();
          return;
        }
      }
      ctx.broadcast(kAlive, 0);
      return;
    }
  }
}

MatchingResult IsraeliItaiMatching::run(graph::GraphView g,
                                        std::uint64_t seed,
                                        std::uint32_t max_rounds) {
  IsraeliItaiMatching algorithm(g);
  sim::Network net(g, seed);
  MatchingResult result;
  result.stats = net.run(algorithm, max_rounds);
  result.partner = algorithm.partner_;
  return result;
}

}  // namespace arbmis::mis
