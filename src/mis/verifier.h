// Independent verification of MIS outputs. Every algorithm test funnels
// through verify(); it never trusts algorithm bookkeeping (it recomputes
// coverage from the graph).
#pragma once

#include <span>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "mis/mis_types.h"

namespace arbmis::mis {

struct Verification {
  bool independent = false;
  bool maximal = false;
  /// All nodes decided (no kUndecided) and kCovered labels are truthful.
  bool labels_consistent = false;
  /// First few offending nodes, for diagnostics.
  std::vector<graph::NodeId> violations;

  bool ok() const noexcept {
    return independent && maximal && labels_consistent;
  }
  std::string describe() const;
};

/// Full check of a labeled result.
Verification verify(graph::GraphView g, const MisResult& result);

/// Check of a bare membership mask (independence + maximality only).
Verification verify_mask(graph::GraphView g, std::span<const std::uint8_t> in_mis);

/// Independence of a set within the subgraph induced by `active` (used by
/// pipeline stages that produce partial independent sets).
bool is_independent(graph::GraphView g, std::span<const std::uint8_t> in_mis);

/// True iff `colors` is a proper coloring of g (adjacent nodes differ).
bool is_proper_coloring(graph::GraphView g,
                        std::span<const std::uint64_t> colors);

}  // namespace arbmis::mis
