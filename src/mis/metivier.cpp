#include "mis/metivier.h"

#include <algorithm>
#include <limits>

namespace arbmis::mis {

MetivierMis::MetivierMis(graph::GraphView g, Options options)
    : options_(options),
      state_(g.num_nodes(), MisState::kUndecided),
      my_priority_(g.num_nodes(), 0) {}

void MetivierMis::start_iteration(sim::NodeContext& ctx) {
  const graph::NodeId v = ctx.id();
  std::uint64_t r = 0;
  if (options_.priority_range == 0) {
    r = ctx.rng().next();
  } else {
    r = ctx.rng().below(options_.priority_range) + 1;
  }
  my_priority_[v] = r;
  ctx.broadcast(kPriority, r);
}

void MetivierMis::on_start(sim::NodeContext& ctx) {
  if (ctx.degree() == 0) {
    // Isolated nodes join immediately.
    state_[ctx.id()] = MisState::kInMis;
    ctx.halt();
    return;
  }
  start_iteration(ctx);
}

void MetivierMis::on_round(sim::NodeContext& ctx,
                           std::span<const sim::Message> inbox) {
  const graph::NodeId v = ctx.id();
  // A neighbor joined last round: leave covered. This takes precedence
  // over resolving, which is what keeps adjacent wins in consecutive
  // rounds impossible (a winner broadcasts kJoined instead of a priority,
  // so its neighbors cover before they could next win).
  for (const sim::Message& m : inbox) {
    if (m.tag == kJoined) {
      state_[v] = MisState::kCovered;
      ctx.halt();
      return;
    }
  }
  // Resolve the competition whose priorities were drawn last round. A
  // neighbor that halts covered this same round may have sent a final
  // priority; losing to such a ghost priority is harmless (it can only
  // delay this node by one iteration, never create a conflict).
  bool winner = true;
  bool any_active_neighbor = false;
  for (const sim::Message& m : inbox) {
    if (m.tag != kPriority) continue;
    any_active_neighbor = true;
    if (m.payload >= my_priority_[v]) winner = false;  // ties never win
  }
  if (winner) {
    state_[v] = MisState::kInMis;
    if (any_active_neighbor) ctx.broadcast(kJoined, 0);
    ctx.halt();
    return;
  }
  start_iteration(ctx);
}

MisResult MetivierMis::run(graph::GraphView g, std::uint64_t seed,
                           Options options, std::uint32_t max_rounds) {
  MetivierMis algorithm(g, options);
  sim::Network net(g, seed);
  MisResult result;
  result.stats = net.run(algorithm, max_rounds);
  result.state = algorithm.state_;
  return result;
}

MisResult luby_a_mis(graph::GraphView g, std::uint64_t seed,
                     std::uint32_t max_rounds) {
  // Priorities from {1, ..., n^4}, computed with saturation: at n = 2^16
  // the product is exactly 2^64 and plain multiplication wraps to 0,
  // which would collapse every priority to the same value (ties never
  // win, so the competition would spin forever).
  const auto n = std::max<std::uint64_t>(g.num_nodes(), 2);
  std::uint64_t range = 1;
  for (int i = 0; i < 4; ++i) {
    if (range > std::numeric_limits<std::uint64_t>::max() / n) {
      range = std::numeric_limits<std::uint64_t>::max();
      break;
    }
    range *= n;
  }
  MetivierMis::Options options;
  options.priority_range = range;
  return MetivierMis::run(g, seed, options, max_rounds);
}

}  // namespace arbmis::mis
