// Sequential greedy MIS — the centralized reference implementation used to
// cross-check distributed outputs and to report MIS-size ratios in the
// benchmark tables.
#pragma once

#include <span>
#include <vector>

#include "graph/graph.h"
#include "mis/mis_types.h"
#include "util/rng.h"

namespace arbmis::mis {

/// Greedy MIS scanning nodes in the given order (a permutation of [0, n)).
MisResult greedy_mis(graph::GraphView g,
                     std::span<const graph::NodeId> order);

/// Greedy MIS in node-id order.
MisResult greedy_mis(graph::GraphView g);

/// Greedy MIS over a uniformly random permutation.
MisResult greedy_mis_random(graph::GraphView g, util::Rng& rng);

}  // namespace arbmis::mis
