#include "mis/ghaffari.h"

#include <cmath>

namespace arbmis::mis {

GhaffariMis::GhaffariMis(graph::GraphView g)
    : state_(g.num_nodes(), MisState::kUndecided),
      phase_(g.num_nodes(), Phase::kSumDesires),
      desire_exponent_(g.num_nodes(), 1),
      marked_(g.num_nodes(), false) {}

void GhaffariMis::begin_iteration(sim::NodeContext& ctx) {
  ctx.broadcast(kDesire, desire_exponent_[ctx.id()]);
  phase_[ctx.id()] = Phase::kSumDesires;
}

void GhaffariMis::on_start(sim::NodeContext& ctx) {
  if (ctx.degree() == 0) {
    state_[ctx.id()] = MisState::kInMis;
    ctx.halt();
    return;
  }
  begin_iteration(ctx);
}

void GhaffariMis::on_round(sim::NodeContext& ctx,
                           std::span<const sim::Message> inbox) {
  const graph::NodeId v = ctx.id();
  for (const sim::Message& m : inbox) {
    if (m.tag == kJoined) {
      state_[v] = MisState::kCovered;
      ctx.halt();
      return;
    }
  }
  switch (phase_[v]) {
    case Phase::kSumDesires: {
      double aggregate = 0.0;
      bool any_active = false;
      for (const sim::Message& m : inbox) {
        if (m.tag != kDesire) continue;
        any_active = true;
        aggregate += std::ldexp(1.0, -static_cast<int>(m.payload));
      }
      if (!any_active) {
        state_[v] = MisState::kInMis;
        ctx.halt();
        return;
      }
      // Ghaffari's update rule, applied to the desires just received:
      // halve when the neighborhood is too eager, (re)double otherwise.
      if (aggregate >= 2.0) {
        ++desire_exponent_[v];
      } else if (desire_exponent_[v] > 1) {
        --desire_exponent_[v];
      }
      const double p = std::ldexp(1.0, -static_cast<int>(desire_exponent_[v]));
      marked_[v] = ctx.rng().bernoulli(p);
      ctx.broadcast(kMark, marked_[v] ? 1 : 0);
      phase_[v] = Phase::kResolveMarks;
      return;
    }
    case Phase::kResolveMarks: {
      if (marked_[v]) {
        bool lone_mark = true;
        for (const sim::Message& m : inbox) {
          if (m.tag == kMark && (m.payload & 1) != 0) {
            lone_mark = false;
            break;
          }
        }
        if (lone_mark) {
          state_[v] = MisState::kInMis;
          ctx.broadcast(kJoined, 0);
          ctx.halt();
          return;
        }
      }
      begin_iteration(ctx);
      return;
    }
  }
}

MisResult GhaffariMis::run(graph::GraphView g, std::uint64_t seed,
                           std::uint32_t max_rounds) {
  GhaffariMis algorithm(g);
  sim::Network net(g, seed);
  MisResult result;
  result.stats = net.run(algorithm, max_rounds);
  result.state = algorithm.state_;
  return result;
}

}  // namespace arbmis::mis
