// Degree-reduction pre-phase — the substitute for Barenboim et al.
// Theorem 7.2, which the paper invokes in §3.3 to bound Δ by
// α·2^√(log n·log log n) before running ArbMIS (see the substitution table
// in DESIGN.md).
//
// Mechanism: run the Métivier competition for a fixed budget of
// O(√(log n·log log n)) rounds. High-degree nodes are eliminated at a high
// per-iteration rate (every neighbor that wins removes them), which is the
// same driving force as in the original theorem; unlike the original we do
// not prove a hard degree cap, so the pipeline recomputes the residual
// maximum degree afterwards and parameterizes the next stage with the
// measured value (knowledge of Δ is a standing assumption in this
// literature). EXPERIMENTS.md reports measured residual degrees.
//
// Because the budgeted run stops mid-protocol, a node can have joined in
// the final round without its neighbors having processed the announcement
// yet; finalize_partial() flushes that one round of bookkeeping (charging
// +1 round), so the returned labeling is always consistent.
#pragma once

#include <cmath>
#include <vector>

#include "mis/mis_types.h"
#include "sim/network.h"

namespace arbmis::mis {

/// Marks as kCovered every undecided node adjacent to a kInMis node.
/// Returns the number of nodes flushed.
std::uint64_t finalize_partial(graph::GraphView g,
                               std::vector<MisState>& state);

struct DegreeReductionResult {
  /// Consistent partial labeling: kInMis nodes are independent, kCovered
  /// nodes have an MIS neighbor, kUndecided nodes form the residual graph.
  std::vector<MisState> state;
  std::vector<std::uint8_t> residual_mask;  ///< 1 = still undecided
  graph::NodeId residual_max_degree = 0;  ///< within the residual graph
  graph::NodeId residual_nodes = 0;
  sim::RunStats stats;
};

/// Default round budget: ceil(c·√(log₂ n · log₂ log₂ n)).
std::uint32_t degree_reduction_budget(graph::NodeId n,
                                      double c = 6.0) noexcept;

/// Runs the budgeted competition and packages the residual graph data.
DegreeReductionResult degree_reduction(graph::GraphView g,
                                       std::uint32_t round_budget,
                                       std::uint64_t seed);

}  // namespace arbmis::mis
