#include "mis/verifier.h"

#include <sstream>

namespace arbmis::mis {

namespace {
constexpr std::size_t kMaxReportedViolations = 8;

void note(Verification& v, graph::NodeId node) {
  if (v.violations.size() < kMaxReportedViolations) v.violations.push_back(node);
}
}  // namespace

std::string Verification::describe() const {
  std::ostringstream out;
  out << "independent=" << independent << " maximal=" << maximal
      << " labels_consistent=" << labels_consistent;
  if (!violations.empty()) {
    out << " violations=[";
    for (std::size_t i = 0; i < violations.size(); ++i) {
      if (i > 0) out << ',';
      out << violations[i];
    }
    out << ']';
  }
  return out.str();
}

Verification verify_mask(graph::GraphView g, std::span<const std::uint8_t> in_mis) {
  Verification result;
  result.independent = true;
  result.maximal = true;
  result.labels_consistent = true;
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    bool covered = false;
    for (graph::NodeId w : g.neighbors(v)) {
      if (in_mis[w]) covered = true;
      if (in_mis[v] && in_mis[w]) {
        result.independent = false;
        note(result, v);
      }
    }
    if (!in_mis[v] && !covered) {
      result.maximal = false;
      note(result, v);
    }
  }
  return result;
}

Verification verify(graph::GraphView g, const MisResult& result) {
  const auto mask = result.mis_mask();
  Verification v = verify_mask(g, mask);
  for (graph::NodeId node = 0; node < g.num_nodes(); ++node) {
    switch (result.state[node]) {
      case MisState::kUndecided:
        v.labels_consistent = false;
        note(v, node);
        break;
      case MisState::kCovered: {
        bool covered = false;
        for (graph::NodeId w : g.neighbors(node)) covered |= mask[w];
        if (!covered) {
          v.labels_consistent = false;
          note(v, node);
        }
        break;
      }
      case MisState::kInMis:
        break;
    }
  }
  return v;
}

bool is_independent(graph::GraphView g, std::span<const std::uint8_t> in_mis) {
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    if (!in_mis[v]) continue;
    for (graph::NodeId w : g.neighbors(v)) {
      if (in_mis[w]) return false;
    }
  }
  return true;
}

bool is_proper_coloring(graph::GraphView g,
                        std::span<const std::uint64_t> colors) {
  if (colors.size() != g.num_nodes()) return false;
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    for (graph::NodeId w : g.neighbors(v)) {
      if (w > v && colors[v] == colors[w]) return false;
    }
  }
  return true;
}

}  // namespace arbmis::mis
