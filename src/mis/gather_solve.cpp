#include "mis/gather_solve.h"

#include <algorithm>
#include <stdexcept>

#include "sim/bfs_rooting.h"

namespace arbmis::mis {

namespace {
constexpr graph::NodeId kEndMarker = ~graph::NodeId{0};
}

GatherSolveMis::GatherSolveMis(graph::GraphView g,
                               std::vector<graph::NodeId> parent)
    : graph_(g),
      parent_(std::move(parent)),
      parent_port_(g.num_nodes(), graph::kNoParent),
      child_ports_(g.num_nodes()),
      state_(g.num_nodes(), MisState::kUndecided),
      up_queue_(g.num_nodes()),
      children_pending_(g.num_nodes(), 0),
      up_done_sent_(g.num_nodes(), false),
      gathered_(g.num_nodes()),
      down_queue_(g.num_nodes()),
      decided_(g.num_nodes(), false) {
  if (parent_.size() != g.num_nodes()) {
    throw std::invalid_argument("GatherSolveMis: parent array size mismatch");
  }
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    if (parent_[v] != graph::kNoParent) {
      parent_port_[v] = g.port_of(v, parent_[v]);
    }
  }
}

void GatherSolveMis::on_start(sim::NodeContext& ctx) {
  const graph::NodeId v = ctx.id();
  if (ctx.degree() == 0) {
    // Singleton component: leader of itself, trivially in the MIS.
    state_[v] = MisState::kInMis;
    ctx.halt();
    return;
  }
  // Contribute each incident edge once (the smaller endpoint owns it).
  for (graph::NodeId w : ctx.neighbors()) {
    if (v < w) up_queue_[v].push_back(encode_pair(v, w));
  }
  if (parent_port_[v] != graph::kNoParent) {
    ctx.send(parent_port_[v], kHello, 0);
  }
}

void GatherSolveMis::solve_locally(graph::NodeId leader) {
  // Reconstruct the component and run greedy MIS by ascending id.
  std::vector<std::pair<graph::NodeId, graph::NodeId>> edges;
  std::vector<graph::NodeId> nodes{leader};
  for (std::uint64_t code : gathered_[leader]) {
    const auto a = static_cast<graph::NodeId>(code >> 32);
    const auto b = static_cast<graph::NodeId>(code & 0xffffffffu);
    edges.push_back({a, b});
    nodes.push_back(a);
    nodes.push_back(b);
  }
  std::sort(nodes.begin(), nodes.end());
  nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());

  // Dense local indices into the sorted node list: no hashed containers in
  // the decision path, so the sweep's memory behavior is as deterministic
  // as its output (tools/arbmis_audit.py --explain DET004).
  const auto idx = [&nodes](graph::NodeId node) {
    return static_cast<std::size_t>(
        std::lower_bound(nodes.begin(), nodes.end(), node) - nodes.begin());
  };
  std::vector<bool> covered(nodes.size(), false);
  std::vector<bool> in_mis(nodes.size(), false);
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    // ascending id = deterministic greedy
    if (covered[i]) continue;
    in_mis[i] = true;
    for (const auto& [a, b] : edges) {
      if (a == nodes[i]) covered[idx(b)] = true;
      if (b == nodes[i]) covered[idx(a)] = true;
    }
  }
  // Queue decisions (own one applies immediately) and the end marker.
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const graph::NodeId node = nodes[i];
    const std::uint64_t payload = encode_pair(node, in_mis[i] ? 1 : 0);
    if (node == leader) {
      state_[leader] =
          in_mis[i] ? MisState::kInMis : MisState::kCovered;
      decided_[leader] = true;
    }
    down_queue_[leader].push_back(payload);
  }
  down_queue_[leader].push_back(encode_pair(kEndMarker, 0));
}

void GatherSolveMis::on_round(sim::NodeContext& ctx,
                              std::span<const sim::Message> inbox) {
  const graph::NodeId v = ctx.id();
  const bool is_leader = parent_port_[v] == graph::kNoParent;

  for (const sim::Message& m : inbox) {
    switch (m.tag) {
      case kHello:
        child_ports_[v].push_back(graph_.port_of(v, m.src));
        ++children_pending_[v];
        break;
      case kEdgeUp:
        if (is_leader) {
          gathered_[v].push_back(m.payload);
        } else {
          up_queue_[v].push_back(m.payload);
        }
        break;
      case kUpDone:
        --children_pending_[v];
        break;
      case kDecision: {
        const auto node = static_cast<graph::NodeId>(m.payload >> 32);
        if (node == v) {
          state_[v] = (m.payload & 1) ? MisState::kInMis : MisState::kCovered;
          decided_[v] = true;
        }
        down_queue_[v].push_back(m.payload);
        break;
      }
      default:
        break;
    }
  }

  // Upload phase.
  if (!up_done_sent_[v] && ctx.round() >= 1) {
    if (is_leader) {
      // The leader absorbs its own contribution directly.
      for (std::uint64_t code : up_queue_[v]) gathered_[v].push_back(code);
      up_queue_[v].clear();
      if (children_pending_[v] == 0 && ctx.round() >= 2) {
        // Round >= 2 so that every child's kHello has arrived.
        up_done_sent_[v] = true;
        solve_locally(v);
      }
    } else if (!up_queue_[v].empty()) {
      ctx.send(parent_port_[v], kEdgeUp, up_queue_[v].front());
      up_queue_[v].erase(up_queue_[v].begin());
      return;
    } else if (children_pending_[v] == 0 && ctx.round() >= 2) {
      ctx.send(parent_port_[v], kUpDone, 0);
      up_done_sent_[v] = true;
      return;
    } else {
      return;  // waiting for children's edges
    }
  }

  // Download phase: forward one queued item per round to every child.
  if (!down_queue_[v].empty()) {
    const std::uint64_t item = down_queue_[v].front();
    down_queue_[v].erase(down_queue_[v].begin());
    for (graph::NodeId port : child_ports_[v]) {
      ctx.send(port, kDecision, item);
    }
    if (static_cast<graph::NodeId>(item >> 32) == kEndMarker) {
      // FIFO guarantees our own decision passed through already.
      ctx.halt();
    }
  }
}

MisResult GatherSolveMis::run(graph::GraphView g, std::uint64_t seed,
                              std::uint32_t rooting_budget,
                              std::uint32_t max_rounds) {
  if (rooting_budget == 0) rooting_budget = g.num_nodes() + 2;
  const sim::BfsRooting::Result rooting =
      sim::BfsRooting::run(g, seed, rooting_budget);
  if (!rooting.stabilized) {
    throw std::invalid_argument(
        "GatherSolveMis: rooting did not stabilize within the budget");
  }
  GatherSolveMis algorithm(g, rooting.parent);
  sim::Network net(g, seed + 1);
  MisResult result;
  result.stats = rooting.stats;
  // Rooting terminates by quiescence, not by halting; the stabilized check
  // above is its completion criterion, so it counts as a finished stage in
  // the conjunctive all_halted of the composition.
  result.stats.all_halted = true;
  const sim::RunStats gather_stats = net.run(algorithm, max_rounds);
  result.stats.absorb(gather_stats);
  result.state = algorithm.state_;
  return result;
}

}  // namespace arbmis::mis
