#include "mis/color_sweep.h"

#include <stdexcept>

namespace arbmis::mis {

ColorSweepMis::ColorSweepMis(graph::GraphView g,
                             std::vector<std::uint64_t> colors,
                             std::uint64_t num_classes)
    : colors_(std::move(colors)),
      num_classes_(num_classes),
      state_(g.num_nodes(), MisState::kUndecided),
      covered_(g.num_nodes(), false) {
  if (colors_.size() != g.num_nodes()) {
    throw std::invalid_argument("ColorSweepMis: colors size mismatch");
  }
  for (std::uint64_t c : colors_) {
    if (c >= num_classes_) {
      throw std::invalid_argument("ColorSweepMis: color out of range");
    }
  }
}

void ColorSweepMis::on_start(sim::NodeContext&) {}

void ColorSweepMis::on_round(sim::NodeContext& ctx,
                             std::span<const sim::Message> inbox) {
  const graph::NodeId v = ctx.id();
  for (const sim::Message& m : inbox) {
    if (m.tag == kJoined) covered_[v] = true;
  }
  const std::uint64_t sweep_class = ctx.round() - 1;
  if (sweep_class < num_classes_ && !covered_[v] &&
      state_[v] == MisState::kUndecided && colors_[v] == sweep_class) {
    state_[v] = MisState::kInMis;
    ctx.broadcast(kJoined, 0);
  }
  if (ctx.round() >= total_rounds()) {
    if (state_[v] == MisState::kUndecided) {
      state_[v] = covered_[v] ? MisState::kCovered : MisState::kInMis;
    }
    ctx.halt();
  }
}

}  // namespace arbmis::mis
