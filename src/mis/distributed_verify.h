// Distributed MIS self-verification: a 2-round CONGEST protocol in which
// every node checks its own MIS label against its neighborhood —
// independence for members, coverage for non-members. The global result
// is the AND of the local verdicts (collectable by any aggregation tree;
// here reported per node).
//
// This is the distributed counterpart of mis/verifier.h: the centralized
// verifier is the test oracle, this protocol shows the property is also
// locally checkable — which is what makes MIS a locally verifiable
// (proof-labeling-scheme-trivial) problem, and is a handy sanity harness
// to run after any composed pipeline inside the simulator itself.
#pragma once

#include <vector>

#include "mis/mis_types.h"
#include "sim/algorithm.h"
#include "sim/network.h"

namespace arbmis::mis {

class DistributedMisCheck : public sim::Algorithm {
 public:
  /// `state` is the labeling to verify (indexed by node id).
  DistributedMisCheck(graph::GraphView g, std::vector<MisState> state);

  std::string_view name() const override { return "distributed_mis_check"; }
  void on_start(sim::NodeContext& ctx) override;
  void on_round(sim::NodeContext& ctx,
                std::span<const sim::Message> inbox) override;

  /// Per-node verdicts, valid after the 1-round run.
  const std::vector<std::uint8_t>& local_ok() const noexcept {
    return local_ok_;
  }

  struct Result {
    std::vector<std::uint8_t> local_ok;
    bool all_ok = false;
    sim::RunStats stats;
  };

  static Result run(graph::GraphView g, std::vector<MisState> state,
                    std::uint64_t seed = 0);

 private:
  enum Tag : std::uint32_t { kMember = 1 };

  std::vector<MisState> state_;
  std::vector<std::uint8_t> local_ok_;
};

}  // namespace arbmis::mis
