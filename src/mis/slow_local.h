// Deterministic local-election MIS: in each round every undecided node
// with no MIS neighbor is a candidate, and a candidate whose id is a
// strict local maximum among candidate neighbors joins. One node per
// "decreasing-id path" is decided per round, so the worst case is O(n)
// rounds — but on the small shattered components this finisher is used for
// (Lemma 3.7 guarantees O(poly(Δ)·log n) sizes) it terminates in a handful
// of rounds and needs no randomness, matching the paper's requirement that
// bad components be finished deterministically.
#pragma once

#include <vector>

#include "mis/mis_types.h"
#include "sim/algorithm.h"
#include "sim/network.h"

namespace arbmis::mis {

class ElectionMis : public sim::Algorithm {
 public:
  explicit ElectionMis(graph::GraphView g);

  std::string_view name() const override { return "election"; }
  void on_start(sim::NodeContext& ctx) override;
  void on_round(sim::NodeContext& ctx,
                std::span<const sim::Message> inbox) override;

  const std::vector<MisState>& states() const noexcept { return state_; }

  static MisResult run(graph::GraphView g, std::uint64_t seed = 0,
                       std::uint32_t max_rounds = 1 << 24);

 private:
  enum Tag : std::uint32_t { kCandidate = 1, kJoined = 2 };

  std::vector<MisState> state_;
};

}  // namespace arbmis::mis
