// Leader-gather MIS for small components — the literal reading of the
// paper's §2.1: "components induced by B can be processed in parallel,
// with each component being processed by a deterministic algorithm (since
// each component is small)".
//
// Protocol (everything deterministic, all messages one CONGEST word):
//   1. BFS rooting (sim/bfs_rooting.h) elects each component's minimum id
//      as leader and builds a BFS tree — O(diameter) rounds.
//   2. Child discovery on the tree (1 round).
//   3. Pipelined convergecast: every node learns its incident edges'
//      endpoint pairs; edges are forwarded toward the root one message
//      per tree edge per round (store-and-forward queues), each encoded
//      as (u, v) in a single 64-bit payload. O(component edges +
//      diameter) rounds; the component-size bound from Lemma 3.7 is what
//      makes this affordable.
//   4. The leader runs greedy MIS (smallest id first) on the gathered
//      component and floods one decision per node down the tree, again
//      pipelined one message per edge per round.
//
// Rounds: O(rooting budget + m_C + diameter_C) where m_C is the largest
// component's edge count. The budget parameter bounds phase 1 (callers
// pass the component-size bound they believe in; n always works).
#pragma once

#include <cstdint>
#include <vector>

#include "mis/mis_types.h"
#include "sim/algorithm.h"
#include "sim/network.h"

namespace arbmis::mis {

class GatherSolveMis : public sim::Algorithm {
 public:
  /// `parent[v]`: BFS-tree parent from a stabilized rooting (kNoParent
  /// for component leaders). The tree must span each component.
  GatherSolveMis(graph::GraphView g,
                 std::vector<graph::NodeId> parent);

  std::string_view name() const override { return "gather_solve"; }
  void on_start(sim::NodeContext& ctx) override;
  void on_round(sim::NodeContext& ctx,
                std::span<const sim::Message> inbox) override;

  const std::vector<MisState>& states() const noexcept { return state_; }

  /// Full pipeline: BFS rooting (round budget = rooting_budget, use the
  /// component-size bound; 0 = n), then gather/solve/scatter.
  static MisResult run(graph::GraphView g, std::uint64_t seed,
                       std::uint32_t rooting_budget = 0,
                       std::uint32_t max_rounds = 1 << 24);

 private:
  enum Tag : std::uint32_t {
    kHello = 1,
    kEdgeUp = 2,    // payload: (u << 32) | v
    kUpDone = 3,    // subtree finished uploading
    kDecision = 4,  // payload: (node << 32) | (1 if in MIS)
  };

  static std::uint64_t encode_pair(graph::NodeId a,
                                   graph::NodeId b) noexcept {
    return (static_cast<std::uint64_t>(a) << 32) | b;
  }

  void solve_locally(graph::NodeId leader);

  graph::GraphView graph_;
  std::vector<graph::NodeId> parent_;
  std::vector<graph::NodeId> parent_port_;
  std::vector<std::vector<graph::NodeId>> child_ports_;
  std::vector<MisState> state_;

  // Upload machinery.
  std::vector<std::vector<std::uint64_t>> up_queue_;   // edges to forward up
  std::vector<graph::NodeId> children_pending_;        // kUpDone not yet seen
  std::vector<std::uint8_t> up_done_sent_;  // byte-wide: written concurrently per node
  std::vector<std::vector<std::uint64_t>> gathered_;   // leader only

  // Download machinery.
  std::vector<std::vector<std::uint64_t>> down_queue_;  // per node, decisions
  std::vector<std::uint8_t> decided_;  // byte-wide: written concurrently per node
};

}  // namespace arbmis::mis
