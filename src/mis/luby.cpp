#include "mis/luby.h"

namespace arbmis::mis {

LubyBMis::LubyBMis(graph::GraphView g)
    : state_(g.num_nodes(), MisState::kUndecided),
      phase_(g.num_nodes(), Phase::kCountDegree),
      residual_degree_(g.num_nodes(), 0),
      marked_(g.num_nodes(), false) {}

void LubyBMis::begin_iteration(sim::NodeContext& ctx) {
  ctx.broadcast(kAlive, 0);
  phase_[ctx.id()] = Phase::kCountDegree;
}

void LubyBMis::on_start(sim::NodeContext& ctx) {
  if (ctx.degree() == 0) {
    state_[ctx.id()] = MisState::kInMis;
    ctx.halt();
    return;
  }
  begin_iteration(ctx);
}

void LubyBMis::on_round(sim::NodeContext& ctx,
                        std::span<const sim::Message> inbox) {
  const graph::NodeId v = ctx.id();
  for (const sim::Message& m : inbox) {
    if (m.tag == kJoined) {
      state_[v] = MisState::kCovered;
      ctx.halt();
      return;
    }
  }
  switch (phase_[v]) {
    case Phase::kCountDegree: {
      std::uint32_t degree = 0;
      for (const sim::Message& m : inbox) degree += (m.tag == kAlive);
      if (degree == 0) {
        // No active neighbors remain: join without announcement.
        state_[v] = MisState::kInMis;
        ctx.halt();
        return;
      }
      residual_degree_[v] = degree;
      marked_[v] = ctx.rng().bernoulli(1.0 / (2.0 * degree));
      const std::uint64_t payload =
          (static_cast<std::uint64_t>(degree) << 1) |
          static_cast<std::uint64_t>(marked_[v] ? 1 : 0);
      ctx.broadcast(kMark, payload);
      phase_[v] = Phase::kResolveMarks;
      return;
    }
    case Phase::kResolveMarks: {
      if (marked_[v]) {
        bool strongest = true;
        for (const sim::Message& m : inbox) {
          if (m.tag != kMark || (m.payload & 1) == 0) continue;
          const auto neighbor_degree =
              static_cast<std::uint32_t>(m.payload >> 1);
          // Luby's rule: a marked neighbor of at least equal degree wins;
          // equal degrees break toward the larger id.
          if (neighbor_degree > residual_degree_[v] ||
              (neighbor_degree == residual_degree_[v] && m.src > v)) {
            strongest = false;
            break;
          }
        }
        if (strongest) {
          state_[v] = MisState::kInMis;
          ctx.broadcast(kJoined, 0);
          ctx.halt();
          return;
        }
      }
      begin_iteration(ctx);
      return;
    }
  }
}

MisResult LubyBMis::run(graph::GraphView g, std::uint64_t seed,
                        std::uint32_t max_rounds) {
  LubyBMis algorithm(g);
  sim::Network net(g, seed);
  MisResult result;
  result.stats = net.run(algorithm, max_rounds);
  result.state = algorithm.state_;
  return result;
}

}  // namespace arbmis::mis
