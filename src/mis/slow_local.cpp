#include "mis/slow_local.h"

namespace arbmis::mis {

ElectionMis::ElectionMis(graph::GraphView g)
    : state_(g.num_nodes(), MisState::kUndecided) {}

void ElectionMis::on_start(sim::NodeContext& ctx) {
  if (ctx.degree() == 0) {
    state_[ctx.id()] = MisState::kInMis;
    ctx.halt();
    return;
  }
  ctx.broadcast(kCandidate, ctx.id());
}

void ElectionMis::on_round(sim::NodeContext& ctx,
                           std::span<const sim::Message> inbox) {
  const graph::NodeId v = ctx.id();
  for (const sim::Message& m : inbox) {
    if (m.tag == kJoined) {
      state_[v] = MisState::kCovered;
      ctx.halt();
      return;
    }
  }
  bool local_max = true;
  bool any_candidate = false;
  for (const sim::Message& m : inbox) {
    if (m.tag != kCandidate) continue;
    any_candidate = true;
    if (m.payload > v) local_max = false;
  }
  if (local_max) {
    state_[v] = MisState::kInMis;
    if (any_candidate) ctx.broadcast(kJoined, 0);
    ctx.halt();
    return;
  }
  ctx.broadcast(kCandidate, v);
}

MisResult ElectionMis::run(graph::GraphView g, std::uint64_t seed,
                           std::uint32_t max_rounds) {
  ElectionMis algorithm(g);
  sim::Network net(g, seed);
  MisResult result;
  result.stats = net.run(algorithm, max_rounds);
  result.state = algorithm.state_;
  return result;
}

}  // namespace arbmis::mis
