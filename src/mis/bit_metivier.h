// The bit-level Métivier–Robson–Saheb-Djahromi–Zemmari MIS (SIROCCO 2009)
// — the paper's reference [11], whose headline is OPTIMAL BIT COMPLEXITY:
// O(log n) bits per channel whp, versus the O(log n) bits PER ROUND that
// shipping whole priorities costs (mis/metivier.h sends a 64-bit word per
// edge per iteration; Luby A ships log(n^4)-bit priorities).
//
// Idea: a node's priority is revealed one random bit at a time. Each edge
// runs a "duel": both endpoints exchange their next bit; the first index
// where the bits differ decides the duel (1 beats 0). Because every node
// uses ONE bit stream for all its duels, the duel order is exactly the
// order of the real numbers 0.b₁b₂b₃... — transitive, so every
// neighborhood has a local maximum and the process advances like
// Métivier's: a node that wins all its duels joins the MIS, its neighbors
// leave, the rest synchronize and start the next phase. Expected bits per
// duel are O(1) (each exchanged pair ends the duel with probability 1/2).
//
// Synchronization is the delicate part (phases end at different times in
// different parts of the graph): duels are self-paced per edge (send your
// (k+1)-th bit only after the k-th pair tied), a node that resolved all
// duels without winning sends kSettled, and a node advances to the next
// phase once every surviving neighbor has settled. Neighbors can then be
// at most one phase apart, so a single phase-parity bit in every message
// disambiguates, with early bits of the next phase buffered per port.
//
// Every message semantically carries O(1) bits (a duel bit, or a
// join/covered/settled flag); semantic_bits() counts them so the bench
// can report bits-per-channel next to the word-based baselines.
#pragma once

#include <cstdint>
#include <vector>

#include "mis/mis_types.h"
#include "sim/algorithm.h"
#include "sim/network.h"

namespace arbmis::mis {

class BitMetivierMis : public sim::Algorithm {
 public:
  explicit BitMetivierMis(graph::GraphView g);

  std::string_view name() const override { return "bit_metivier"; }
  void on_start(sim::NodeContext& ctx) override;
  void on_round(sim::NodeContext& ctx,
                std::span<const sim::Message> inbox) override;

  const std::vector<MisState>& states() const noexcept { return state_; }

  /// Total semantic payload bits sent (2 per duel bit — value + parity —
  /// and 2 per control message).
  std::uint64_t semantic_bits() const noexcept {
    std::uint64_t total = 0;
    for (const std::uint64_t bits : semantic_bits_) total += bits;
    return total;
  }

  struct Result {
    MisResult mis;
    std::uint64_t semantic_bits = 0;
    double bits_per_channel = 0.0;  ///< semantic_bits / m
  };

  static Result run(graph::GraphView g, std::uint64_t seed,
                    std::uint32_t max_rounds = 1 << 22);

 private:
  enum Tag : std::uint32_t {
    kBit = 1,      // payload: (parity << 1) | bit
    kJoined = 2,
    kCovered = 3,
    kSettled = 4,  // payload: parity
  };

  enum class Duel : std::uint8_t { kTied, kWon, kLost, kGone };

  struct PortState {
    Duel duel = Duel::kTied;
    std::uint32_t sent = 0;      ///< my bits sent this phase
    std::uint32_t compared = 0;  ///< duel index resolved as tie so far
    std::vector<std::uint8_t> received;         ///< their bits, this phase
    std::vector<std::uint8_t> pending;          ///< early next-phase bits
    bool settled = false;        ///< their kSettled for this phase
    bool pending_settled = false;  ///< their kSettled for the next phase
  };

  void send_bit(sim::NodeContext& ctx, graph::NodeId port);
  void process_duel(graph::NodeId v, graph::NodeId port);
  void maybe_conclude_phase(sim::NodeContext& ctx);
  void maybe_advance_phase(sim::NodeContext& ctx);
  std::uint8_t my_bit(sim::NodeContext& ctx, std::uint32_t index);

  std::vector<MisState> state_;
  std::vector<std::uint8_t> phase_parity_;
  std::vector<std::vector<PortState>> ports_;
  std::vector<std::vector<std::uint8_t>> my_bits_;  ///< this phase's stream
  std::vector<std::uint8_t> settled_sent_;  // byte-wide: written concurrently per node
  // Per-node slots, summed post-run: callbacks must not increment a
  // shared aggregate (see the thread-safety contract in sim/algorithm.h).
  std::vector<std::uint64_t> semantic_bits_;
};

}  // namespace arbmis::mis
