// SparseMis: the paper's Lemma 3.8 pipeline for arboricity-α graphs —
// Barenboim–Elkin forest decomposition, Cole–Vishkin 3-coloring of each
// forest in turn, then an MIS extracted from the colorings.
//
// With k forests the per-forest 3-colorings combine into a proper
// composite coloring of the whole graph with 3^k classes (any edge lies in
// exactly one forest and its endpoints differ in that coordinate), and a
// color-class sweep finishes deterministically. The sweep is exponential
// in k, so it is used when 3^k stays below a configurable budget — the
// regime the paper uses it in (small components / small α); beyond the
// budget SparseMis falls back to the deterministic election finisher,
// reported in the result so benchmarks can see which path ran.
//
// Total rounds: O(log n) decomposition + k·O(log* n) coloring + 3^k sweep.
#pragma once

#include <cstdint>

#include "mis/mis_types.h"
#include "sim/network.h"

namespace arbmis::mis {

struct SparseMisOptions {
  /// Arboricity bound for the forest decomposition (>= true arboricity).
  graph::NodeId alpha = 1;
  /// eps of the (2+eps)·α H-partition threshold.
  double eps = 2.0;
  /// Fall back to ElectionMis when 3^(#forests) exceeds this.
  std::uint64_t composite_class_budget = 2048;
};

struct SparseMisResult {
  MisResult mis;
  graph::NodeId num_forests = 0;
  std::uint64_t composite_classes = 0;
  bool used_fallback = false;
};

/// Runs the full pipeline on a fresh network (stage round counts are
/// summed into mis.stats). Throws std::invalid_argument if the forest
/// decomposition stalls, which certifies options.alpha was below the true
/// arboricity.
SparseMisResult sparse_mis(graph::GraphView g, SparseMisOptions options,
                           std::uint64_t seed = 0);

}  // namespace arbmis::mis
