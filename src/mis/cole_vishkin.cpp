#include "mis/cole_vishkin.h"

#include <bit>
#include <stdexcept>

namespace arbmis::mis {

namespace {
constexpr std::uint32_t kHelloRounds = 1;     // child discovery
constexpr std::uint32_t kReducePairs = 3;     // colors 5, 4, 3 removed
constexpr std::uint32_t kSweepRounds = 4;     // classes 0,1,2 + flush
}  // namespace

std::uint32_t ColeVishkin::reduction_iterations(graph::NodeId n) noexcept {
  std::uint64_t max_value = n > 0 ? n - 1 : 0;
  std::uint32_t iterations = 0;
  while (max_value > 5) {
    const auto bits = static_cast<std::uint64_t>(std::bit_width(max_value));
    max_value = 2 * (bits - 1) + 1;
    ++iterations;
  }
  return iterations;
}

std::uint32_t ColeVishkin::total_rounds(graph::NodeId n, Mode mode) noexcept {
  std::uint32_t rounds =
      kHelloRounds + reduction_iterations(n) + 2 * kReducePairs;
  if (mode == Mode::kForestMis) rounds += kSweepRounds;
  return rounds;
}

ColeVishkin::ColeVishkin(graph::GraphView g,
                         std::span<const graph::NodeId> parent, Mode mode)
    : graph_(g),
      mode_(mode),
      reduction_rounds_(reduction_iterations(g.num_nodes())),
      final_round_(total_rounds(g.num_nodes(), mode)),
      parent_port_(g.num_nodes(), graph::kNoParent),
      child_ports_(g.num_nodes()),
      color_(g.num_nodes(), 0),
      pre_shift_color_(g.num_nodes(), 0),
      color3_(g.num_nodes(), 0),
      state_(g.num_nodes(), MisState::kUndecided),
      covered_(g.num_nodes(), false) {
  if (parent.size() != g.num_nodes()) {
    throw std::invalid_argument("ColeVishkin: parent array size mismatch");
  }
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    if (parent[v] == graph::kNoParent) continue;
    parent_port_[v] = g.port_of(v, parent[v]);  // throws if not an edge
  }
  // Reject cycles: follow pointers with path marking.
  std::vector<unsigned char> mark(g.num_nodes(), 0);
  for (graph::NodeId start = 0; start < g.num_nodes(); ++start) {
    if (mark[start] != 0) continue;
    std::vector<graph::NodeId> chain;
    graph::NodeId v = start;
    while (v != graph::kNoParent && mark[v] == 0) {
      mark[v] = 1;
      chain.push_back(v);
      v = parent[v];
    }
    if (v != graph::kNoParent && mark[v] == 1) {
      throw std::invalid_argument("ColeVishkin: parent pointers form a cycle");
    }
    for (graph::NodeId u : chain) mark[u] = 2;
  }
}

void ColeVishkin::send_color_to_children(sim::NodeContext& ctx,
                                         std::uint64_t color) {
  for (graph::NodeId port : child_ports_[ctx.id()]) {
    ctx.send(port, kColor, color);
  }
}

std::uint64_t ColeVishkin::parent_color(
    std::span<const sim::Message> inbox) const {
  for (const sim::Message& m : inbox) {
    if (m.tag == kColor) return m.payload;
  }
  return 0;  // roots never call this with a kColor expectation
}

void ColeVishkin::on_start(sim::NodeContext& ctx) {
  const graph::NodeId v = ctx.id();
  color_[v] = v;
  if (parent_port_[v] != graph::kNoParent) {
    ctx.send(parent_port_[v], kHello, 0);
  }
}

void ColeVishkin::on_round(sim::NodeContext& ctx,
                           std::span<const sim::Message> inbox) {
  const graph::NodeId v = ctx.id();
  const std::uint32_t round = ctx.round();
  const bool has_parent = parent_port_[v] != graph::kNoParent;

  if (round == 1) {
    // Child discovery: every kHello came from a child.
    for (const sim::Message& m : inbox) {
      if (m.tag == kHello) {
        child_ports_[v].push_back(graph_.port_of(v, m.src));
      }
    }
    send_color_to_children(ctx, color_[v]);
    if (round == final_round_) ctx.halt();  // degenerate tiny schedules
    return;
  }

  const std::uint32_t reduce_begin = kHelloRounds + 1;  // first CV round
  const std::uint32_t reduce_end = kHelloRounds + reduction_rounds_;
  const std::uint32_t pairs_begin = reduce_end + 1;
  const std::uint32_t pairs_end = reduce_end + 2 * kReducePairs;

  if (round >= reduce_begin && round <= reduce_end) {
    // One Cole–Vishkin iteration: new color = 2i + bit_i(old), where i is
    // the lowest bit position where old differs from the parent's color.
    if (has_parent) {
      const std::uint64_t pc = parent_color(inbox);
      const std::uint64_t diff = color_[v] ^ pc;
      const auto i = static_cast<std::uint64_t>(std::countr_zero(diff));
      color_[v] = 2 * i + ((color_[v] >> i) & 1);
    } else {
      color_[v] = color_[v] & 1;
    }
    send_color_to_children(ctx, color_[v]);
  } else if (round >= pairs_begin && round <= pairs_end) {
    const std::uint32_t offset = round - pairs_begin;  // 0..5
    const std::uint32_t target = 5 - offset / 2;       // 5, 5, 4, 4, 3, 3
    if (offset % 2 == 0) {
      // Shift-down: adopt the parent's color; all of v's children now
      // share v's previous color, so v keeps it for the recolor step.
      // Roots pick a fresh color from {0,1,2} different from their old
      // color — picking mod 6 could reintroduce a target color that an
      // earlier pair already cleared.
      pre_shift_color_[v] = color_[v];
      color_[v] = has_parent ? parent_color(inbox) : (color_[v] + 1) % 3;
    } else {
      // Recolor nodes of the target color into {0,1,2}. Excluded values:
      // the parent's current color and the children's common color.
      if (color_[v] == target) {
        const std::uint64_t parent_c =
            has_parent ? parent_color(inbox) : ~std::uint64_t{0};
        const std::uint64_t children_c = pre_shift_color_[v];
        for (std::uint64_t candidate = 0; candidate < 3; ++candidate) {
          if (candidate != parent_c && candidate != children_c) {
            color_[v] = candidate;
            break;
          }
        }
      }
    }
    send_color_to_children(ctx, color_[v]);
    if (round == pairs_end) {
      color3_[v] = static_cast<std::uint8_t>(color_[v]);
      if (mode_ == Mode::kColorOnly) {
        ctx.halt();
        return;
      }
    }
  } else if (mode_ == Mode::kForestMis && round > pairs_end) {
    for (const sim::Message& m : inbox) {
      if (m.tag == kJoined) covered_[v] = true;
    }
    const std::uint32_t sweep_class = round - pairs_end - 1;  // 0,1,2,3
    if (sweep_class < 3 && !covered_[v] &&
        state_[v] == MisState::kUndecided && color3_[v] == sweep_class) {
      state_[v] = MisState::kInMis;
      if (parent_port_[v] != graph::kNoParent) {
        ctx.send(parent_port_[v], kJoined, 0);
      }
      for (graph::NodeId port : child_ports_[v]) ctx.send(port, kJoined, 0);
    }
    if (round == final_round_) {
      if (state_[v] == MisState::kUndecided) {
        state_[v] = covered_[v] ? MisState::kCovered : MisState::kInMis;
      }
      ctx.halt();
    }
  }
}

ColeVishkin::Result ColeVishkin::run(graph::GraphView g,
                                     std::span<const graph::NodeId> parent,
                                     Mode mode, std::uint64_t seed) {
  ColeVishkin algorithm(g, parent, mode);
  sim::Network net(g, seed);
  Result result;
  result.stats =
      net.run(algorithm, total_rounds(g.num_nodes(), mode) + 1);
  result.colors = algorithm.color3_;
  if (mode == Mode::kForestMis) result.state = algorithm.state_;
  return result;
}

}  // namespace arbmis::mis
