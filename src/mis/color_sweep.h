// Color-class sweep: given a proper coloring of the graph with C classes,
// computes an MIS in C+1 rounds by letting class c join in round c+1
// (minus nodes already covered by earlier classes). The standard final
// step of every coloring-based MIS in this repository.
#pragma once

#include <cstdint>
#include <vector>

#include "mis/mis_types.h"
#include "sim/algorithm.h"
#include "sim/network.h"

namespace arbmis::mis {

class ColorSweepMis : public sim::Algorithm {
 public:
  /// `colors[v]` must be in [0, num_classes) and proper on g's edges;
  /// properness is the caller's contract (violations surface as verifier
  /// failures, which is what the tests assert).
  ColorSweepMis(graph::GraphView g, std::vector<std::uint64_t> colors,
                std::uint64_t num_classes);

  std::string_view name() const override { return "color_sweep"; }
  void on_start(sim::NodeContext& ctx) override;
  void on_round(sim::NodeContext& ctx,
                std::span<const sim::Message> inbox) override;

  const std::vector<MisState>& states() const noexcept { return state_; }

  std::uint32_t total_rounds() const noexcept {
    return static_cast<std::uint32_t>(num_classes_) + 1;
  }

 private:
  enum Tag : std::uint32_t { kJoined = 1 };

  std::vector<std::uint64_t> colors_;
  std::uint64_t num_classes_;
  std::vector<MisState> state_;
  std::vector<std::uint8_t> covered_;  // byte-wide: written concurrently per node
};

}  // namespace arbmis::mis
