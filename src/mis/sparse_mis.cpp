#include "mis/sparse_mis.h"

#include <stdexcept>

#include "mis/cole_vishkin.h"
#include "mis/color_sweep.h"
#include "mis/forest_decomposition.h"
#include "mis/slow_local.h"

namespace arbmis::mis {

SparseMisResult sparse_mis(graph::GraphView g, SparseMisOptions options,
                           std::uint64_t seed) {
  SparseMisResult result;
  sim::Network net(g, seed);

  // Stage 1: H-partition into forests.
  ForestDecomposition decomposition(
      g, {.alpha = options.alpha, .eps = options.eps});
  result.mis.stats = net.run(decomposition, 1 << 20);
  for (graph::NodeId level : decomposition.levels()) {
    if (level == ForestDecomposition::kUnassigned) {
      throw std::invalid_argument(
          "sparse_mis: forest decomposition stalled — alpha is below the "
          "true arboricity");
    }
  }
  const graph::Orientation orientation = decomposition.orientation();
  const graph::ForestPartition forests =
      graph::forests_from_orientation(g, orientation);
  result.num_forests = forests.num_forests();

  std::uint64_t classes = 1;
  for (graph::NodeId f = 0; f < result.num_forests; ++f) classes *= 3;
  result.composite_classes = classes;

  if (classes > options.composite_class_budget) {
    // Fallback: deterministic election (still deterministic, as Lemma 3.8
    // requires, just without the coloring shortcut).
    result.used_fallback = true;
    ElectionMis election(g);
    const sim::RunStats stats = net.run(election, 1 << 24);
    result.mis.stats.absorb(stats);
    result.mis.state = election.states();
    return result;
  }

  // Stage 2: Cole–Vishkin 3-coloring of each forest in turn.
  std::vector<std::uint64_t> composite(g.num_nodes(), 0);
  std::uint64_t radix = 1;
  for (graph::NodeId f = 0; f < result.num_forests; ++f) {
    ColeVishkin coloring(g, forests.forest_parent[f],
                         ColeVishkin::Mode::kColorOnly);
    const sim::RunStats stats = net.run(
        coloring,
        ColeVishkin::total_rounds(g.num_nodes(), ColeVishkin::Mode::kColorOnly) + 1);
    result.mis.stats.absorb(stats);
    for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
      composite[v] += radix * coloring.colors()[v];
    }
    radix *= 3;
  }

  // Stage 3: sweep the composite classes.
  ColorSweepMis sweep(g, std::move(composite), classes);
  const sim::RunStats stats = net.run(sweep, sweep.total_rounds() + 1);
  result.mis.stats.absorb(stats);
  result.mis.state = sweep.states();
  return result;
}

}  // namespace arbmis::mis
