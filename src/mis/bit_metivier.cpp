#include "mis/bit_metivier.h"

namespace arbmis::mis {

BitMetivierMis::BitMetivierMis(graph::GraphView g)
    : state_(g.num_nodes(), MisState::kUndecided),
      phase_parity_(g.num_nodes(), 0),
      ports_(g.num_nodes()),
      my_bits_(g.num_nodes()),
      settled_sent_(g.num_nodes(), false),
      semantic_bits_(g.num_nodes(), 0) {
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    ports_[v].resize(g.degree(v));
  }
}

std::uint8_t BitMetivierMis::my_bit(sim::NodeContext& ctx,
                                    std::uint32_t index) {
  auto& bits = my_bits_[ctx.id()];
  while (bits.size() <= index) {
    bits.push_back(static_cast<std::uint8_t>(ctx.rng().next() & 1));
  }
  return bits[index];
}

void BitMetivierMis::send_bit(sim::NodeContext& ctx, graph::NodeId port) {
  PortState& p = ports_[ctx.id()][port];
  const std::uint8_t bit = my_bit(ctx, p.sent);
  const std::uint64_t payload =
      (static_cast<std::uint64_t>(phase_parity_[ctx.id()]) << 1) | bit;
  ctx.send(port, kBit, payload);
  semantic_bits_[ctx.id()] += 2;
  ++p.sent;
}

void BitMetivierMis::process_duel(graph::NodeId v, graph::NodeId port) {
  PortState& p = ports_[v][port];
  while (p.duel == Duel::kTied && p.compared < p.received.size() &&
         p.compared < my_bits_[v].size()) {
    const std::uint8_t mine = my_bits_[v][p.compared];
    const std::uint8_t theirs = p.received[p.compared];
    if (mine == theirs) {
      ++p.compared;
      continue;
    }
    p.duel = (mine == 1) ? Duel::kWon : Duel::kLost;
  }
}

void BitMetivierMis::maybe_conclude_phase(sim::NodeContext& ctx) {
  const graph::NodeId v = ctx.id();
  if (state_[v] != MisState::kUndecided || settled_sent_[v]) return;
  bool all_resolved = true;
  bool all_won = true;
  for (const PortState& p : ports_[v]) {
    if (p.duel == Duel::kTied) all_resolved = false;
    if (p.duel == Duel::kLost) all_won = false;
  }
  if (!all_resolved) return;
  if (all_won) {
    state_[v] = MisState::kInMis;
    ctx.broadcast(kJoined, 0);
    semantic_bits_[v] += 2 * ctx.degree();
    ctx.halt();
    return;
  }
  // Settled loser: tell the survivors and wait for the phase barrier.
  for (graph::NodeId port = 0; port < ports_[v].size(); ++port) {
    if (ports_[v][port].duel != Duel::kGone) {
      ctx.send(port, kSettled, phase_parity_[v]);
      semantic_bits_[v] += 2;
    }
  }
  settled_sent_[v] = true;
}

void BitMetivierMis::maybe_advance_phase(sim::NodeContext& ctx) {
  const graph::NodeId v = ctx.id();
  if (!settled_sent_[v] || state_[v] != MisState::kUndecided) return;
  bool everyone_settled = true;
  bool any_neighbor = false;
  for (const PortState& p : ports_[v]) {
    if (p.duel == Duel::kGone) continue;
    any_neighbor = true;
    if (!p.settled) everyone_settled = false;
  }
  if (!everyone_settled) return;
  if (!any_neighbor) {
    // All neighbors are gone and none of them joined: we are free.
    state_[v] = MisState::kInMis;
    ctx.halt();
    return;
  }
  // Phase barrier passed: restart every surviving duel.
  phase_parity_[v] ^= 1;
  settled_sent_[v] = false;
  my_bits_[v].clear();
  for (graph::NodeId port = 0; port < ports_[v].size(); ++port) {
    PortState& p = ports_[v][port];
    if (p.duel == Duel::kGone) continue;
    p.duel = Duel::kTied;
    p.sent = 0;
    p.compared = 0;
    p.received = std::move(p.pending);
    p.pending.clear();
    p.settled = p.pending_settled;
    p.pending_settled = false;
    send_bit(ctx, port);
    // Buffered early bits may already resolve the duel; the conclusion is
    // announced next round (control messages never share a round with
    // bit sends — that would break the one-message-per-edge budget).
    process_duel(v, port);
  }
}

void BitMetivierMis::on_start(sim::NodeContext& ctx) {
  const graph::NodeId v = ctx.id();
  if (ctx.degree() == 0) {
    state_[v] = MisState::kInMis;
    ctx.halt();
    return;
  }
  for (graph::NodeId port = 0; port < ctx.degree(); ++port) {
    send_bit(ctx, port);
  }
}

void BitMetivierMis::on_round(sim::NodeContext& ctx,
                              std::span<const sim::Message> inbox) {
  const graph::NodeId v = ctx.id();
  // A join anywhere in the neighborhood covers us, regardless of state.
  for (const sim::Message& m : inbox) {
    if (m.tag == kJoined) {
      state_[v] = MisState::kCovered;
      ctx.broadcast(kCovered, 0);
      semantic_bits_[v] += 2 * ctx.degree();
      ctx.halt();
      return;
    }
  }
  for (const sim::Message& m : inbox) {
    const graph::NodeId port = [&] {
      const auto nbrs = ctx.neighbors();
      return static_cast<graph::NodeId>(
          std::lower_bound(nbrs.begin(), nbrs.end(), m.src) - nbrs.begin());
    }();
    PortState& p = ports_[v][port];
    switch (m.tag) {
      case kBit: {
        const auto parity = static_cast<std::uint8_t>((m.payload >> 1) & 1);
        const auto bit = static_cast<std::uint8_t>(m.payload & 1);
        if (parity == phase_parity_[v]) {
          p.received.push_back(bit);
        } else {
          p.pending.push_back(bit);  // they advanced first; buffer
        }
        break;
      }
      case kCovered:
        p.duel = Duel::kGone;
        break;
      case kSettled: {
        const auto parity = static_cast<std::uint8_t>(m.payload & 1);
        if (parity == phase_parity_[v]) {
          p.settled = true;
        } else {
          p.pending_settled = true;
        }
        break;
      }
      default:
        break;
    }
  }

  // Advance every live duel with the bits now available (no sends yet).
  const bool was_settled = settled_sent_[v];
  if (state_[v] == MisState::kUndecided && !settled_sent_[v]) {
    for (graph::NodeId port = 0; port < ports_[v].size(); ++port) {
      if (ports_[v][port].duel == Duel::kTied) process_duel(v, port);
    }
    // Conclude BEFORE any bit is sent this round, so the kJoined/kSettled
    // control messages never collide with a duel bit on the same edge.
    maybe_conclude_phase(ctx);
    if (state_[v] != MisState::kUndecided) return;
    if (!settled_sent_[v]) {
      // Still dueling: owe the next bit wherever we are caught up. Any
      // resolution this causes is announced next round.
      for (graph::NodeId port = 0; port < ports_[v].size(); ++port) {
        PortState& p = ports_[v][port];
        if (p.duel == Duel::kTied && p.sent == p.compared) {
          send_bit(ctx, port);
          process_duel(v, port);
        }
      }
    }
  }
  // Only advance if the settle announcement went out in an EARLIER round
  // — advancing sends fresh bits, which must not share an edge-round with
  // this round's kSettled.
  if (was_settled) maybe_advance_phase(ctx);
}

BitMetivierMis::Result BitMetivierMis::run(graph::GraphView g,
                                           std::uint64_t seed,
                                           std::uint32_t max_rounds) {
  BitMetivierMis algorithm(g);
  sim::Network net(g, seed);
  Result result;
  result.mis.stats = net.run(algorithm, max_rounds);
  result.mis.state = algorithm.state_;
  result.semantic_bits = algorithm.semantic_bits();
  result.bits_per_channel =
      g.num_edges() > 0 ? static_cast<double>(result.semantic_bits) /
                              static_cast<double>(g.num_edges())
                        : 0.0;
  return result;
}

}  // namespace arbmis::mis
