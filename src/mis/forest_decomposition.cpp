#include "mis/forest_decomposition.h"

#include <cmath>

namespace arbmis::mis {

ForestDecomposition::ForestDecomposition(graph::GraphView g,
                                         Options options)
    : graph_(g),
      threshold_(static_cast<graph::NodeId>(std::ceil(
          (2.0 + options.eps) * static_cast<double>(options.alpha)))),
      level_(g.num_nodes(), kUnassigned),
      neighbor_levels_heard_(g.num_nodes(), 0),
      neighbor_level_(g.num_nodes()) {
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    neighbor_level_[v].assign(g.degree(v), kUnassigned);
  }
}

void ForestDecomposition::on_start(sim::NodeContext& ctx) {
  const graph::NodeId v = ctx.id();
  if (ctx.degree() == 0) {
    level_[v] = 0;
    ctx.halt();
    return;
  }
  ctx.broadcast(kActive, 0);
}

void ForestDecomposition::on_round(sim::NodeContext& ctx,
                                   std::span<const sim::Message> inbox) {
  const graph::NodeId v = ctx.id();
  graph::NodeId active_neighbors = 0;
  for (const sim::Message& m : inbox) {
    switch (m.tag) {
      case kActive:
        ++active_neighbors;
        break;
      case kLevel: {
        const graph::NodeId port = graph_.port_of(v, m.src);
        if (neighbor_level_[v][port] == kUnassigned) {
          neighbor_level_[v][port] = static_cast<graph::NodeId>(m.payload);
          ++neighbor_levels_heard_[v];
        }
        break;
      }
      default:
        break;
    }
  }
  if (level_[v] == kUnassigned) {
    if (active_neighbors <= threshold_) {
      level_[v] = ctx.round();
      ctx.broadcast(kLevel, level_[v]);
    } else {
      ctx.broadcast(kActive, 0);
    }
  }
  if (level_[v] != kUnassigned &&
      neighbor_levels_heard_[v] == ctx.degree()) {
    ctx.halt();
  }
}

graph::Orientation ForestDecomposition::orientation() const {
  graph::GraphView g = graph_;
  std::vector<std::vector<graph::NodeId>> parents(g.num_nodes());
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    const auto nbrs = g.neighbors(v);
    for (graph::NodeId port = 0; port < nbrs.size(); ++port) {
      const graph::NodeId w = nbrs[port];
      const graph::NodeId lv = level_[v];
      const graph::NodeId lw = neighbor_level_[v][port];
      // A node assigned at level L had at most `threshold` neighbors still
      // active, all of which end up at levels >= L; orienting toward them
      // (same-level ties by id) bounds the out-degree by the threshold.
      if (lw > lv || (lw == lv && w > v)) {
        parents[v].push_back(w);
      }
    }
  }
  return graph::Orientation(g, std::move(parents));
}

ForestDecomposition::Result ForestDecomposition::run(graph::GraphView g,
                                                     Options options,
                                                     std::uint64_t seed,
                                                     std::uint32_t max_rounds) {
  ForestDecomposition algorithm(g, options);
  sim::Network net(g, seed);
  Result result{.levels = {},
                .orientation = graph::Orientation(g, std::vector<std::vector<graph::NodeId>>(g.num_nodes())),
                .forests = {},
                .stats = net.run(algorithm, max_rounds),
                .complete = true};
  result.levels = algorithm.level_;
  for (graph::NodeId level : result.levels) {
    if (level == kUnassigned) result.complete = false;
  }
  if (result.complete) {
    result.orientation = algorithm.orientation();
    result.forests = graph::forests_from_orientation(g, result.orientation);
  }
  return result;
}

}  // namespace arbmis::mis
