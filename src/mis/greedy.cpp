#include "mis/greedy.h"

#include <numeric>

namespace arbmis::mis {

MisResult greedy_mis(graph::GraphView g,
                     std::span<const graph::NodeId> order) {
  MisResult result;
  result.state.assign(g.num_nodes(), MisState::kUndecided);
  for (graph::NodeId v : order) {
    if (result.state[v] != MisState::kUndecided) continue;
    result.state[v] = MisState::kInMis;
    for (graph::NodeId w : g.neighbors(v)) {
      if (result.state[w] == MisState::kUndecided) {
        result.state[w] = MisState::kCovered;
      }
    }
  }
  return result;
}

MisResult greedy_mis(graph::GraphView g) {
  std::vector<graph::NodeId> order(g.num_nodes());
  std::iota(order.begin(), order.end(), graph::NodeId{0});
  return greedy_mis(g, order);
}

MisResult greedy_mis_random(graph::GraphView g, util::Rng& rng) {
  std::vector<graph::NodeId> order(g.num_nodes());
  std::iota(order.begin(), order.end(), graph::NodeId{0});
  for (graph::NodeId i = g.num_nodes(); i > 1; --i) {
    std::swap(order[i - 1], order[rng.below(i)]);
  }
  return greedy_mis(g, order);
}

}  // namespace arbmis::mis
