#include "mis/distributed_verify.h"

namespace arbmis::mis {

DistributedMisCheck::DistributedMisCheck(graph::GraphView g,
                                         std::vector<MisState> state)
    : state_(std::move(state)), local_ok_(g.num_nodes(), 0) {
  if (state_.size() != g.num_nodes()) {
    throw std::invalid_argument("DistributedMisCheck: state size mismatch");
  }
}

void DistributedMisCheck::on_start(sim::NodeContext& ctx) {
  const graph::NodeId v = ctx.id();
  ctx.broadcast(kMember, state_[v] == MisState::kInMis ? 1 : 0);
}

void DistributedMisCheck::on_round(sim::NodeContext& ctx,
                                   std::span<const sim::Message> inbox) {
  const graph::NodeId v = ctx.id();
  bool has_member_neighbor = false;
  for (const sim::Message& m : inbox) {
    if (m.tag == kMember && (m.payload & 1) != 0) {
      has_member_neighbor = true;
      break;
    }
  }
  switch (state_[v]) {
    case MisState::kInMis:
      local_ok_[v] = has_member_neighbor ? 0 : 1;  // independence
      break;
    case MisState::kCovered:
      local_ok_[v] = has_member_neighbor ? 1 : 0;  // true coverage
      break;
    case MisState::kUndecided:
      local_ok_[v] = 0;  // an undecided node is always a failure
      break;
  }
  ctx.halt();
}

DistributedMisCheck::Result DistributedMisCheck::run(
    graph::GraphView g, std::vector<MisState> state, std::uint64_t seed) {
  DistributedMisCheck algorithm(g, std::move(state));
  sim::Network net(g, seed);
  Result result;
  result.stats = net.run(algorithm, 2);
  result.local_ok = algorithm.local_ok_;
  result.all_ok = true;
  for (std::uint8_t ok : result.local_ok) {
    result.all_ok = result.all_ok && (ok != 0);
  }
  return result;
}

}  // namespace arbmis::mis
