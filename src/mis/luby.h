// Luby's Algorithm B (SIAM J. Comput. 1986): in each iteration every active
// node marks itself with probability 1/(2·deg(v)) (isolated-in-residual
// nodes join outright); a marked node unmarks if a marked neighbor has
// larger degree (ties broken by id); surviving marked nodes join the MIS
// and their neighborhoods leave. Runs in O(log n) rounds whp.
//
// This is the "simple randomized algorithm discovered in the late 80s" the
// paper's introduction benchmarks against. Luby's Algorithm A is provided
// by mis/metivier.h (luby_a_mis).
//
// Round layout (3 rounds per iteration):
//   1. broadcast kAlive                       -> learn residual degree
//   2. mark w.p. 1/(2 deg); broadcast kMark(degree, marked)
//   3. marked nodes with no stronger marked neighbor join, broadcast
//      kJoined, halt; nodes seeing kJoined cover+halt at the start of the
//      next iteration's kAlive round.
#pragma once

#include <cstdint>
#include <vector>

#include "mis/mis_types.h"
#include "sim/algorithm.h"
#include "sim/network.h"

namespace arbmis::mis {

class LubyBMis : public sim::Algorithm {
 public:
  explicit LubyBMis(graph::GraphView g);

  std::string_view name() const override { return "luby_b"; }
  void on_start(sim::NodeContext& ctx) override;
  void on_round(sim::NodeContext& ctx,
                std::span<const sim::Message> inbox) override;

  const std::vector<MisState>& states() const noexcept { return state_; }

  static MisResult run(graph::GraphView g, std::uint64_t seed,
                       std::uint32_t max_rounds = 1 << 20);

 private:
  enum Tag : std::uint32_t { kAlive = 1, kMark = 2, kJoined = 3 };
  enum class Phase : std::uint8_t { kCountDegree, kResolveMarks };

  void begin_iteration(sim::NodeContext& ctx);

  std::vector<MisState> state_;
  std::vector<Phase> phase_;
  std::vector<std::uint32_t> residual_degree_;
  std::vector<std::uint8_t> marked_;  // byte-wide: written concurrently per node
};

}  // namespace arbmis::mis
