// Linial's deterministic color reduction (SIAM J. Comput. 1992) and the
// bounded-degree MIS built on it — our stand-in for the Barenboim et al.
// Theorem 7.4 finisher used by the paper's §3.3 (see DESIGN.md for the
// substitution note).
//
// One Linial round maps a proper m-coloring to a proper q²-coloring, where
// q is a prime chosen so that q > k·D and q^(k+1) >= m for some degree
// bound k: a color is read as a degree-<=k polynomial over GF(q) (its
// base-q digits); after hearing its neighbors' colors a node picks an
// evaluation point x where its polynomial differs from every neighbor's
// polynomial (at most k·D < q points are ruined) and adopts the color
// (x, p(x)). Distinct adjacent colors stay distinct regardless of the
// neighbors' own choices of x. Iterating reaches O(D²) colors in
// O(log* n) rounds; a color-class sweep then yields an MIS.
//
// Total rounds: O(log* n) + O(D²), independent of n up to the log* term —
// which is exactly the property the finishing phase needs (the shattering
// phase leaves only graphs of small max degree behind).
#pragma once

#include <cstdint>
#include <vector>

#include "mis/mis_types.h"
#include "sim/algorithm.h"
#include "sim/network.h"

namespace arbmis::mis {

/// The reduction schedule (m_0 = n, then m_{i+1} = q_i^2) is a pure
/// function of (n, D); every node computes it locally, so the rounds stay
/// in lockstep with no coordination.
struct LinialSchedule {
  struct Step {
    std::uint64_t colors_in = 0;   ///< m
    std::uint64_t degree_k = 0;    ///< polynomial degree bound k
    std::uint64_t prime_q = 0;     ///< field size q
    std::uint64_t colors_out = 0;  ///< q^2
  };
  std::vector<Step> steps;
  std::uint64_t final_colors = 0;

  static LinialSchedule compute(std::uint64_t n, std::uint64_t max_degree);
};

class LinialMis : public sim::Algorithm {
 public:
  struct Options {
    /// Max degree bound D the schedule is built for. Must be >= the true
    /// maximum degree; the run throws std::logic_error if a node ever
    /// fails to find an evaluation point (which certifies D was wrong).
    graph::NodeId max_degree = 0;
    /// Stop after coloring (skip the MIS sweep).
    bool color_only = false;
  };

  LinialMis(graph::GraphView g, Options options);

  std::string_view name() const override { return "linial"; }
  void on_start(sim::NodeContext& ctx) override;
  void on_round(sim::NodeContext& ctx,
                std::span<const sim::Message> inbox) override;

  const LinialSchedule& schedule() const noexcept { return schedule_; }
  /// Final colors, in [0, schedule().final_colors).
  const std::vector<std::uint64_t>& final_colors() const noexcept {
    return color_;
  }
  const std::vector<MisState>& states() const noexcept { return state_; }

  static MisResult run(graph::GraphView g, graph::NodeId max_degree,
                       std::uint64_t seed = 0,
                       std::uint32_t max_rounds = 1 << 24);

 private:
  enum Tag : std::uint32_t { kColor = 1, kJoined = 2 };

  std::uint64_t reduce_color(std::uint64_t my_color,
                             const std::vector<std::uint64_t>& neighbor_colors,
                             const LinialSchedule::Step& step) const;

  Options options_;
  LinialSchedule schedule_;
  std::uint32_t final_round_;
  std::vector<std::uint64_t> color_;
  std::vector<MisState> state_;
  std::vector<std::uint8_t> covered_;  // byte-wide: written concurrently per node
};

}  // namespace arbmis::mis
