#include "mis/linial.h"

#include <algorithm>
#include <stdexcept>

namespace arbmis::mis {

namespace {

bool is_prime(std::uint64_t x) noexcept {
  if (x < 2) return false;
  for (std::uint64_t d = 2; d * d <= x; ++d) {
    if (x % d == 0) return false;
  }
  return true;
}

std::uint64_t next_prime(std::uint64_t x) noexcept {
  while (!is_prime(x)) ++x;
  return x;
}

/// True if base^exp >= target, without overflowing.
bool pow_at_least(std::uint64_t base, std::uint64_t exp,
                  std::uint64_t target) noexcept {
  std::uint64_t value = 1;
  for (std::uint64_t i = 0; i < exp; ++i) {
    if (value >= (target + base - 1) / base) return true;
    value *= base;
  }
  return value >= target;
}

/// Smallest r with r^exp >= target.
std::uint64_t ceil_root(std::uint64_t target, std::uint64_t exp) noexcept {
  std::uint64_t lo = 1;
  std::uint64_t hi = target;
  while (lo < hi) {
    const std::uint64_t mid = lo + (hi - lo) / 2;
    if (pow_at_least(mid, exp, target)) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

LinialSchedule::Step choose_step(std::uint64_t m, std::uint64_t degree) {
  LinialSchedule::Step best;
  best.colors_in = m;
  best.colors_out = ~std::uint64_t{0};
  for (std::uint64_t k = 1; k <= 64; ++k) {
    // Need q prime, q > k*degree (so a good evaluation point exists) and
    // q^(k+1) >= m (so every color has a distinct polynomial).
    const std::uint64_t q =
        next_prime(std::max(k * degree + 1, ceil_root(m, k + 1)));
    const std::uint64_t out = q * q;
    if (out < best.colors_out) {
      best.degree_k = k;
      best.prime_q = q;
      best.colors_out = out;
    }
    // Once k*degree alone forces q^2 past the best, no larger k helps.
    if ((k + 1) * degree + 1 > best.prime_q && best.colors_out <= m) break;
  }
  return best;
}

/// Evaluates the polynomial whose base-q digits are `color`, at point x.
std::uint64_t poly_eval(std::uint64_t color, std::uint64_t q, std::uint64_t k,
                        std::uint64_t x) noexcept {
  // Horner over the digits, most significant first.
  std::uint64_t digits[65];
  for (std::uint64_t i = 0; i <= k; ++i) {
    digits[i] = color % q;
    color /= q;
  }
  std::uint64_t value = 0;
  for (std::uint64_t i = k + 1; i-- > 0;) {
    value = (value * x + digits[i]) % q;
  }
  return value;
}

}  // namespace

LinialSchedule LinialSchedule::compute(std::uint64_t n,
                                       std::uint64_t max_degree) {
  LinialSchedule schedule;
  std::uint64_t m = std::max<std::uint64_t>(n, 1);
  const std::uint64_t degree = std::max<std::uint64_t>(max_degree, 1);
  while (true) {
    const Step step = choose_step(m, degree);
    if (step.colors_out >= m) break;  // fixed point reached
    schedule.steps.push_back(step);
    m = step.colors_out;
  }
  schedule.final_colors = m;
  return schedule;
}

LinialMis::LinialMis(graph::GraphView g, Options options)
    : options_(options),
      schedule_(LinialSchedule::compute(g.num_nodes(),
                                        options.max_degree)),
      color_(g.num_nodes(), 0),
      state_(g.num_nodes(), MisState::kUndecided),
      covered_(g.num_nodes(), false) {
  const auto reduction_rounds =
      static_cast<std::uint32_t>(schedule_.steps.size());
  if (options_.color_only) {
    final_round_ = reduction_rounds;
  } else {
    final_round_ = reduction_rounds +
                   static_cast<std::uint32_t>(schedule_.final_colors) + 1;
  }
}

std::uint64_t LinialMis::reduce_color(
    std::uint64_t my_color, const std::vector<std::uint64_t>& neighbor_colors,
    const LinialSchedule::Step& step) const {
  const std::uint64_t q = step.prime_q;
  const std::uint64_t k = step.degree_k;
  // Find x in GF(q) where my polynomial differs from every neighbor's.
  // At most k*degree <= k*D < q points are ruined, so some x works.
  for (std::uint64_t x = 0; x < q; ++x) {
    const std::uint64_t mine = poly_eval(my_color, q, k, x);
    bool good = true;
    for (std::uint64_t c : neighbor_colors) {
      if (poly_eval(c, q, k, x) == mine) {
        good = false;
        break;
      }
    }
    if (good) return x * q + mine;
  }
  throw std::logic_error(
      "LinialMis: no evaluation point found — the max_degree bound passed "
      "to the schedule is below the true maximum degree");
}

void LinialMis::on_start(sim::NodeContext& ctx) {
  color_[ctx.id()] = ctx.id();
  if (final_round_ == 0) {  // n tiny and color_only: ids already final
    ctx.halt();
    return;
  }
  ctx.broadcast(kColor, color_[ctx.id()]);
}

void LinialMis::on_round(sim::NodeContext& ctx,
                         std::span<const sim::Message> inbox) {
  const graph::NodeId v = ctx.id();
  const std::uint32_t round = ctx.round();
  const auto reduction_rounds =
      static_cast<std::uint32_t>(schedule_.steps.size());

  if (round <= reduction_rounds) {
    std::vector<std::uint64_t> neighbor_colors;
    neighbor_colors.reserve(inbox.size());
    for (const sim::Message& m : inbox) {
      if (m.tag == kColor) neighbor_colors.push_back(m.payload);
    }
    color_[v] = reduce_color(color_[v], neighbor_colors,
                             schedule_.steps[round - 1]);
    if (round == final_round_) {  // color_only
      ctx.halt();
      return;
    }
    if (round < reduction_rounds) {
      ctx.broadcast(kColor, color_[v]);
    }
    return;
  }

  // Color-class sweep: class (round - reduction_rounds - 1) joins.
  for (const sim::Message& m : inbox) {
    if (m.tag == kJoined) covered_[v] = true;
  }
  const std::uint64_t sweep_class = round - reduction_rounds - 1;
  if (sweep_class < schedule_.final_colors && !covered_[v] &&
      state_[v] == MisState::kUndecided && color_[v] == sweep_class) {
    state_[v] = MisState::kInMis;
    ctx.broadcast(kJoined, 0);
  }
  if (round == final_round_) {
    if (state_[v] == MisState::kUndecided) {
      state_[v] = covered_[v] ? MisState::kCovered : MisState::kInMis;
    }
    ctx.halt();
  }
}

MisResult LinialMis::run(graph::GraphView g, graph::NodeId max_degree,
                         std::uint64_t seed, std::uint32_t max_rounds) {
  LinialMis algorithm(g, Options{.max_degree = max_degree});
  sim::Network net(g, seed);
  MisResult result;
  result.stats = net.run(algorithm, max_rounds);
  result.state = algorithm.state_;
  return result;
}

}  // namespace arbmis::mis
