// Cole–Vishkin deterministic coin tossing (Information & Control 1986) on a
// rooted forest, in the CONGEST simulator.
//
// Input: a parent pointer for each node (kNoParent for roots) such that
// every (v, parent[v]) pair is an edge of the underlying graph. The paper
// uses this twice: consistently-oriented trees admit O(log* n) MIS (§1),
// and Lemma 3.8 finishes each bad-set component by 3-coloring the forests
// of a Barenboim–Elkin decomposition with exactly this routine.
//
// Phases (the whole schedule is a fixed function of n, so every node halts
// at the same precomputed round):
//   1. one round of child discovery (children greet their parents),
//   2. K = O(log* n) Cole–Vishkin bit-reduction iterations bringing colors
//      from {0,...,n-1} down to {0,...,5},
//   3. three shift-down + recolor pairs removing colors 5, 4, 3,
//   4. (kForestMis mode) a 3-round color-class sweep turning the coloring
//      into an MIS of the forest — which is an MIS of the graph whenever
//      the forest spans all graph edges (i.e. the input graph is a forest).
#pragma once

#include <span>
#include <cstdint>
#include <vector>

#include "graph/orientation.h"
#include "mis/mis_types.h"
#include "sim/algorithm.h"
#include "sim/network.h"

namespace arbmis::mis {

class ColeVishkin : public sim::Algorithm {
 public:
  enum class Mode { kColorOnly, kForestMis };

  /// `parent[v]` is the global id of v's parent, or graph::kNoParent.
  /// Throws std::invalid_argument if a parent pointer is not a graph edge
  /// or the pointers contain a cycle.
  ColeVishkin(graph::GraphView g, std::span<const graph::NodeId> parent,
              Mode mode);

  std::string_view name() const override { return "cole_vishkin"; }
  void on_start(sim::NodeContext& ctx) override;
  void on_round(sim::NodeContext& ctx,
                std::span<const sim::Message> inbox) override;

  /// Final colors in {0, 1, 2}; valid after the run completes.
  const std::vector<std::uint8_t>& colors() const noexcept { return color3_; }
  /// Valid in kForestMis mode after the run completes.
  const std::vector<MisState>& states() const noexcept { return state_; }

  /// Number of Cole–Vishkin bit-reduction iterations for id colors < n.
  static std::uint32_t reduction_iterations(graph::NodeId n) noexcept;
  /// Total rounds of the full schedule (including the MIS sweep if
  /// requested); the run always takes exactly this many rounds.
  static std::uint32_t total_rounds(graph::NodeId n, Mode mode) noexcept;

  /// Runs on a fresh network; returns colors via the algorithm object.
  struct Result {
    std::vector<std::uint8_t> colors;
    std::vector<MisState> state;  // empty in kColorOnly mode
    sim::RunStats stats;
  };
  static Result run(graph::GraphView g,
                    std::span<const graph::NodeId> parent, Mode mode,
                    std::uint64_t seed = 0);

 private:
  enum Tag : std::uint32_t { kHello = 1, kColor = 2, kJoined = 3 };

  void send_color_to_children(sim::NodeContext& ctx, std::uint64_t color);
  std::uint64_t parent_color(std::span<const sim::Message> inbox) const;

  graph::GraphView graph_;
  Mode mode_;
  std::uint32_t reduction_rounds_;
  std::uint32_t final_round_;

  std::vector<graph::NodeId> parent_port_;  // kNoParent if root
  std::vector<std::vector<graph::NodeId>> child_ports_;
  std::vector<std::uint64_t> color_;
  std::vector<std::uint64_t> pre_shift_color_;  // children's color post shift
  std::vector<std::uint8_t> color3_;
  std::vector<MisState> state_;
  std::vector<std::uint8_t> covered_;  // byte-wide: written concurrently per node
};

}  // namespace arbmis::mis
