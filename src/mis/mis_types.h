// Shared result types for MIS computations.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "sim/network.h"

namespace arbmis::mis {

/// Final status of a node after an MIS computation.
enum class MisState : std::uint8_t {
  kUndecided = 0,  ///< algorithm did not decide this node (partial results)
  kInMis = 1,
  kCovered = 2,  ///< has a neighbor in the MIS
};

struct MisResult {
  std::vector<MisState> state;
  sim::RunStats stats;

  bool in_mis(graph::NodeId v) const noexcept {
    return state[v] == MisState::kInMis;
  }

  std::vector<graph::NodeId> mis_nodes() const {
    std::vector<graph::NodeId> out;
    for (graph::NodeId v = 0; v < state.size(); ++v) {
      if (state[v] == MisState::kInMis) out.push_back(v);
    }
    return out;
  }

  std::uint64_t mis_size() const noexcept {
    std::uint64_t count = 0;
    for (MisState s : state) count += (s == MisState::kInMis);
    return count;
  }

  std::uint64_t undecided_count() const noexcept {
    std::uint64_t count = 0;
    for (MisState s : state) count += (s == MisState::kUndecided);
    return count;
  }

  /// Byte mask (1 = in MIS); std::uint8_t rather than bool so it can be
  /// viewed as a std::span.
  std::vector<std::uint8_t> mis_mask() const {
    std::vector<std::uint8_t> mask(state.size(), 0);
    for (graph::NodeId v = 0; v < state.size(); ++v) {
      mask[v] = (state[v] == MisState::kInMis) ? 1 : 0;
    }
    return mask;
  }
};

}  // namespace arbmis::mis
