// Israeli–Itai randomized maximal matching (IPL 1986) — reference [8] of
// the paper, one of the "late 80s" symmetry-breaking algorithms its
// introduction situates Luby's MIS among. Included both as a companion
// primitive (MIS and maximal matching are the twin symmetry-breaking
// problems) and as a second, independent consumer of the CONGEST
// simulator.
//
// Protocol: a fixed 3-round cadence keeps every node in lockstep
// (round mod 3 determines the phase for all nodes):
//   Alive   (round ≡ 0): a sender whose proposal was accepted last round
//           reads the kAccept, records the match, and halts silently;
//           everyone else broadcasts kAlive.
//   Propose (round ≡ 1): recompute active ports from the kAlive inbox
//           (none -> halt unmatched); flip a coin; senders send kPropose
//           to one uniformly random active neighbor.
//   Resolve (round ≡ 2): a receiver with incoming proposals accepts one
//           uniformly (kAccept to that port), records the match, halts.
//           A sender proposed to exactly one node, so at most one
//           acceptance can reach it — matches never conflict.
// O(log n) iterations whp (a constant fraction of edges dies per
// iteration in expectation, as in the original paper).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "sim/algorithm.h"
#include "sim/network.h"

namespace arbmis::mis {

inline constexpr graph::NodeId kUnmatched = ~graph::NodeId{0};

struct MatchingResult {
  /// partner[v] = matched neighbor's id, or kUnmatched.
  std::vector<graph::NodeId> partner;
  sim::RunStats stats;

  std::uint64_t num_matched_edges() const noexcept;
};

/// Checks symmetry (partner of my partner is me), edge validity, and
/// maximality (no edge with both endpoints unmatched).
bool verify_maximal_matching(graph::GraphView g,
                             const MatchingResult& result);

class IsraeliItaiMatching : public sim::Algorithm {
 public:
  explicit IsraeliItaiMatching(graph::GraphView g);

  std::string_view name() const override { return "israeli_itai"; }
  void on_start(sim::NodeContext& ctx) override;
  void on_round(sim::NodeContext& ctx,
                std::span<const sim::Message> inbox) override;

  const std::vector<graph::NodeId>& partners() const noexcept {
    return partner_;
  }

  static MatchingResult run(graph::GraphView g, std::uint64_t seed,
                            std::uint32_t max_rounds = 1 << 20);

 private:
  enum Tag : std::uint32_t { kAlive = 1, kPropose = 2, kAccept = 3 };

  graph::GraphView graph_;
  std::vector<graph::NodeId> partner_;
  std::vector<std::uint8_t> is_sender_;  // byte-wide: written concurrently per node
};

}  // namespace arbmis::mis
