// Barenboim–Elkin H-partition / forest decomposition (PODC 2008), used by
// the paper's Lemma 3.8: an arboricity-α graph is partitioned into
// ceil((2+eps)·α) rooted forests, together with an acyclic edge
// orientation, in O(log n) CONGEST rounds.
//
// Protocol (one round per H-level, fully pipelined): every still-
// unassigned node broadcasts kActive each round; a node whose count of
// active neighbors drops to at most (2+eps)·α assigns itself to the
// current level and broadcasts kLevel(level) once. Because an
// arboricity-α graph always has average degree < 2α, a constant fraction
// of the remaining nodes is assigned per level, giving O(log n) levels.
// Edges are then oriented toward the endpoint with the (higher level,
// higher id) and v's i-th out-edge goes to forest i — at most
// ceil((2+eps)·α) parents per node, so that many forests.
//
// Every node halts once it is assigned AND has heard kLevel from all of
// its neighbors, at which point its parent set is determined locally.
#pragma once

#include <vector>

#include "graph/orientation.h"
#include "sim/algorithm.h"
#include "sim/network.h"

namespace arbmis::mis {

class ForestDecomposition : public sim::Algorithm {
 public:
  struct Options {
    /// Arboricity bound the threshold is computed from. The decomposition
    /// is correct for any value >= the true arboricity; smaller values can
    /// stall (reported via unassigned nodes after max_rounds).
    graph::NodeId alpha = 1;
    /// eps in the (2+eps)·α degree threshold. eps = 2 matches the "4α
    /// forest decomposition" the paper's Lemma 3.8 cites.
    double eps = 2.0;
  };

  ForestDecomposition(graph::GraphView g, Options options);

  std::string_view name() const override { return "forest_decomposition"; }
  void on_start(sim::NodeContext& ctx) override;
  void on_round(sim::NodeContext& ctx,
                std::span<const sim::Message> inbox) override;

  /// Degree threshold (2+eps)·α used by every node.
  graph::NodeId threshold() const noexcept { return threshold_; }
  /// H-level of each node (valid after the run; kUnassigned if stalled).
  static constexpr graph::NodeId kUnassigned = ~graph::NodeId{0};
  const std::vector<graph::NodeId>& levels() const noexcept { return level_; }

  /// Builds the orientation implied by the computed levels.
  graph::Orientation orientation() const;

  struct Result {
    std::vector<graph::NodeId> levels;
    graph::Orientation orientation;
    graph::ForestPartition forests;
    sim::RunStats stats;
    bool complete = false;  ///< every node was assigned a level
  };

  /// Runs to completion and packages levels + orientation + forests.
  static Result run(graph::GraphView g, Options options,
                    std::uint64_t seed = 0,
                    std::uint32_t max_rounds = 1 << 20);

 private:
  enum Tag : std::uint32_t { kActive = 1, kLevel = 2 };

  graph::GraphView graph_;
  graph::NodeId threshold_;
  std::vector<graph::NodeId> level_;
  std::vector<graph::NodeId> neighbor_levels_heard_;
  std::vector<std::vector<graph::NodeId>> neighbor_level_;  // by port
};

}  // namespace arbmis::mis
