#include "serve/protocol.h"

#include <algorithm>

namespace arbmis::serve {

namespace {

void put_le(std::vector<std::uint8_t>& out, std::uint64_t v, int bytes) {
  for (int i = 0; i < bytes; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

bool known_type(std::uint16_t t) {
  switch (static_cast<MsgType>(t)) {
    case MsgType::kLoadGraph:
    case MsgType::kComputeMis:
    case MsgType::kQuery:
    case MsgType::kUpdateEdges:
    case MsgType::kVerify:
    case MsgType::kStats:
    case MsgType::kMetrics:
    case MsgType::kDumpRecorder:
    case MsgType::kReplyLoadGraph:
    case MsgType::kReplyComputeMis:
    case MsgType::kReplyQuery:
    case MsgType::kReplyUpdateEdges:
    case MsgType::kReplyVerify:
    case MsgType::kReplyStats:
    case MsgType::kReplyMetrics:
    case MsgType::kReplyDumpRecorder:
    case MsgType::kError:
      return true;
  }
  return false;
}

}  // namespace

std::vector<std::uint8_t> encode_frame(const Frame& frame) {
  if (frame.payload.size() > kMaxPayloadBytes) {
    throw ProtocolError("payload exceeds kMaxPayloadBytes");
  }
  std::vector<std::uint8_t> out;
  out.reserve(kFrameHeaderBytes + frame.payload.size());
  put_le(out, kMagic, 4);
  put_le(out, kProtocolVersion, 2);
  put_le(out, static_cast<std::uint16_t>(frame.type), 2);
  put_le(out, frame.request_id, 8);
  put_le(out, frame.payload.size(), 4);
  out.insert(out.end(), frame.payload.begin(), frame.payload.end());
  return out;
}

void FrameReader::feed(const std::uint8_t* data, std::size_t size) {
  buffer_.insert(buffer_.end(), data, data + size);
}

bool FrameReader::next(Frame& out) {
  auto le = [this](std::size_t at, int bytes) {
    std::uint64_t v = 0;
    for (int i = 0; i < bytes; ++i) {
      v |= static_cast<std::uint64_t>(buffer_[at + i]) << (8 * i);
    }
    return v;
  };
  // Validate each header field as soon as its bytes arrive, not only once
  // the full header is buffered — a connection speaking the wrong protocol
  // is detected from its first few bytes instead of stalling both ends.
  if (buffer_.size() >= 4 && le(0, 4) != kMagic) {
    throw ProtocolError("bad frame magic");
  }
  if (buffer_.size() >= 6 && le(4, 2) != kProtocolVersion) {
    throw ProtocolError("unsupported protocol version");
  }
  if (buffer_.size() >= 8 &&
      !known_type(static_cast<std::uint16_t>(le(6, 2)))) {
    throw ProtocolError("unknown message type");
  }
  if (buffer_.size() < kFrameHeaderBytes) return false;
  const auto type = static_cast<std::uint16_t>(le(6, 2));
  const std::uint64_t payload_len = le(16, 4);
  if (payload_len > kMaxPayloadBytes) {
    throw ProtocolError("frame payload too large");
  }
  if (buffer_.size() < kFrameHeaderBytes + payload_len) return false;
  out.type = static_cast<MsgType>(type);
  out.request_id = le(8, 8);
  out.payload.assign(
      buffer_.begin() + static_cast<std::ptrdiff_t>(kFrameHeaderBytes),
      buffer_.begin() +
          static_cast<std::ptrdiff_t>(kFrameHeaderBytes + payload_len));
  buffer_.erase(buffer_.begin(),
                buffer_.begin() + static_cast<std::ptrdiff_t>(
                                      kFrameHeaderBytes + payload_len));
  return true;
}

void PayloadWriter::u8(std::uint8_t v) { put_le(out_, v, 1); }
void PayloadWriter::u16(std::uint16_t v) { put_le(out_, v, 2); }
void PayloadWriter::u32(std::uint32_t v) { put_le(out_, v, 4); }
void PayloadWriter::u64(std::uint64_t v) { put_le(out_, v, 8); }

void PayloadWriter::str(const std::string& s) {
  if (s.size() > kMaxPayloadBytes) throw ProtocolError("string too long");
  u32(static_cast<std::uint32_t>(s.size()));
  out_.insert(out_.end(), s.begin(), s.end());
}

std::uint8_t PayloadReader::u8() {
  if (remaining() < 1) throw ProtocolError("payload truncated");
  return data_[pos_++];
}

std::uint16_t PayloadReader::u16() {
  if (remaining() < 2) throw ProtocolError("payload truncated");
  std::uint16_t v = 0;
  for (int i = 0; i < 2; ++i) {
    v = static_cast<std::uint16_t>(v | (data_[pos_ + i] << (8 * i)));
  }
  pos_ += 2;
  return v;
}

std::uint32_t PayloadReader::u32() {
  if (remaining() < 4) throw ProtocolError("payload truncated");
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(data_[pos_ + i]) << (8 * i);
  }
  pos_ += 4;
  return v;
}

std::uint64_t PayloadReader::u64() {
  if (remaining() < 8) throw ProtocolError("payload truncated");
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
  }
  pos_ += 8;
  return v;
}

std::string PayloadReader::str() {
  const std::uint32_t len = u32();
  if (remaining() < len) throw ProtocolError("payload truncated");
  std::string s(reinterpret_cast<const char*>(data_ + pos_), len);
  pos_ += len;
  return s;
}

void PayloadReader::finish() const {
  if (pos_ != size_) throw ProtocolError("trailing payload bytes");
}

// --- Message codecs -------------------------------------------------------

void encode(PayloadWriter& w, const LoadGraphRequest& m) {
  w.u64(m.graph_id);
  w.u8(m.from_path ? 1 : 0);
  if (m.from_path) {
    w.str(m.path);
  } else {
    w.u32(m.num_nodes);
    w.u64(m.edges.size());
    for (const graph::Edge& e : m.edges) {
      w.u32(e.u);
      w.u32(e.v);
    }
  }
}

void decode(PayloadReader& r, LoadGraphRequest& m) {
  m.graph_id = r.u64();
  const std::uint8_t source = r.u8();
  if (source > 1) throw ProtocolError("bad load source tag");
  m.from_path = source == 1;
  if (m.from_path) {
    m.path = r.str();
  } else {
    m.num_nodes = r.u32();
    const std::uint64_t count = r.u64();
    if (count * 8 > r.remaining()) throw ProtocolError("payload truncated");
    m.edges.resize(count);
    for (graph::Edge& e : m.edges) {
      e.u = r.u32();
      e.v = r.u32();
    }
  }
}

void encode(PayloadWriter& w, const LoadGraphReply& m) {
  w.u32(m.num_nodes);
  w.u64(m.num_edges);
  w.u64(m.content_hash);
}

void decode(PayloadReader& r, LoadGraphReply& m) {
  m.num_nodes = r.u32();
  m.num_edges = r.u64();
  m.content_hash = r.u64();
}

namespace {

void encode_params(PayloadWriter& w, const ComputeParams& p) {
  w.u32(p.alpha);
  w.u64(p.seed);
}

void decode_params(PayloadReader& r, ComputeParams& p) {
  p.alpha = r.u32();
  p.seed = r.u64();
}

}  // namespace

void encode(PayloadWriter& w, const ComputeMisRequest& m) {
  w.u64(m.graph_id);
  encode_params(w, m.params);
}

void decode(PayloadReader& r, ComputeMisRequest& m) {
  m.graph_id = r.u64();
  decode_params(r, m.params);
}

void encode(PayloadWriter& w, const ComputeMisReply& m) {
  w.u64(m.mis_size);
  w.u64(m.labels_hash);
  w.u64(m.content_hash);
  w.u8(m.cache_hit);
  w.u8(m.certified);
  w.u32(m.attempts);
  w.u64(m.rounds);
}

void decode(PayloadReader& r, ComputeMisReply& m) {
  m.mis_size = r.u64();
  m.labels_hash = r.u64();
  m.content_hash = r.u64();
  m.cache_hit = r.u8();
  m.certified = r.u8();
  m.attempts = r.u32();
  m.rounds = r.u64();
}

void encode(PayloadWriter& w, const QueryRequest& m) {
  w.u64(m.graph_id);
  encode_params(w, m.params);
  w.u64(m.nodes.size());
  for (const graph::NodeId v : m.nodes) w.u32(v);
}

void decode(PayloadReader& r, QueryRequest& m) {
  m.graph_id = r.u64();
  decode_params(r, m.params);
  const std::uint64_t count = r.u64();
  if (count * 4 > r.remaining()) throw ProtocolError("payload truncated");
  m.nodes.resize(count);
  for (graph::NodeId& v : m.nodes) v = r.u32();
}

void encode(PayloadWriter& w, const QueryReply& m) {
  w.u64(m.states.size());
  for (const std::uint8_t s : m.states) w.u8(s);
  w.u8(m.cache_hit);
}

void decode(PayloadReader& r, QueryReply& m) {
  const std::uint64_t count = r.u64();
  if (count > r.remaining()) throw ProtocolError("payload truncated");
  m.states.resize(count);
  for (std::uint8_t& s : m.states) s = r.u8();
  m.cache_hit = r.u8();
}

void encode(PayloadWriter& w, const UpdateEdgesRequest& m) {
  w.u64(m.graph_id);
  encode_params(w, m.params);
  w.u64(m.ops.size());
  for (const EdgeUpdate& op : m.ops) {
    w.u8(static_cast<std::uint8_t>(op.op));
    w.u32(op.u);
    w.u32(op.v);
  }
}

void decode(PayloadReader& r, UpdateEdgesRequest& m) {
  m.graph_id = r.u64();
  decode_params(r, m.params);
  const std::uint64_t count = r.u64();
  if (count * 9 > r.remaining()) throw ProtocolError("payload truncated");
  m.ops.resize(count);
  for (EdgeUpdate& op : m.ops) {
    const std::uint8_t tag = r.u8();
    if (tag > static_cast<std::uint8_t>(UpdateOp::kDetachVertex)) {
      throw ProtocolError("bad update op tag");
    }
    op.op = static_cast<UpdateOp>(tag);
    op.u = r.u32();
    op.v = r.u32();
  }
}

void encode(PayloadWriter& w, const UpdateEdgesReply& m) {
  w.u64(m.epoch);
  w.u8(m.incremental);
  w.u8(m.certified);
  w.u32(m.residual);
  w.u64(m.mis_size);
  w.u64(m.labels_hash);
  w.u64(m.content_hash);
}

void decode(PayloadReader& r, UpdateEdgesReply& m) {
  m.epoch = r.u64();
  m.incremental = r.u8();
  m.certified = r.u8();
  m.residual = r.u32();
  m.mis_size = r.u64();
  m.labels_hash = r.u64();
  m.content_hash = r.u64();
}

void encode(PayloadWriter& w, const VerifyRequest& m) {
  w.u64(m.graph_id);
  encode_params(w, m.params);
}

void decode(PayloadReader& r, VerifyRequest& m) {
  m.graph_id = r.u64();
  decode_params(r, m.params);
}

void encode(PayloadWriter& w, const VerifyReply& m) {
  w.u8(m.ok);
  w.u64(m.mis_size);
  w.u64(m.labels_hash);
}

void decode(PayloadReader& r, VerifyReply& m) {
  m.ok = r.u8();
  m.mis_size = r.u64();
  m.labels_hash = r.u64();
}

void encode(PayloadWriter& w, const StatsReply& m) {
  w.u32(14);  // field count — bump together with the struct and SERVING.md
  w.u64(m.requests_total);
  w.u64(m.errors);
  w.u64(m.graphs_loaded);
  w.u64(m.computes);
  w.u64(m.cache_hits);
  w.u64(m.cache_misses);
  w.u64(m.queries);
  w.u64(m.updates);
  w.u64(m.update_ops);
  w.u64(m.repairs_incremental);
  w.u64(m.repairs_full);
  w.u64(m.repairs_certified);
  w.u64(m.verifies);
  w.u64(m.cache_evictions);
}

void decode(PayloadReader& r, StatsReply& m) {
  if (r.u32() != 14) throw ProtocolError("bad stats field count");
  m.requests_total = r.u64();
  m.errors = r.u64();
  m.graphs_loaded = r.u64();
  m.computes = r.u64();
  m.cache_hits = r.u64();
  m.cache_misses = r.u64();
  m.queries = r.u64();
  m.updates = r.u64();
  m.update_ops = r.u64();
  m.repairs_incremental = r.u64();
  m.repairs_full = r.u64();
  m.repairs_certified = r.u64();
  m.verifies = r.u64();
  m.cache_evictions = r.u64();
}

void encode(PayloadWriter& w, const MetricsRequest& m) {
  w.u16(m.version);
}

void decode(PayloadReader& r, MetricsRequest& m) {
  m.version = r.u16();
  if (m.version != kMetricsPayloadVersion) {
    throw ProtocolError("unsupported metrics payload version");
  }
}

void encode(PayloadWriter& w, const MetricsReply& m) {
  w.u16(m.version);
  w.str(m.json);
}

void decode(PayloadReader& r, MetricsReply& m) {
  m.version = r.u16();
  if (m.version != kMetricsPayloadVersion) {
    throw ProtocolError("unsupported metrics payload version");
  }
  m.json = r.str();
}

void encode(PayloadWriter& w, const DumpRecorderRequest& m) {
  w.u8(m.clear_after);
}

void decode(PayloadReader& r, DumpRecorderRequest& m) {
  m.clear_after = r.u8();
  if (m.clear_after > 1) throw ProtocolError("bad clear_after flag");
}

void encode(PayloadWriter& w, const DumpRecorderReply& m) {
  w.u8(m.recorder_attached);
  w.u64(m.buffered_events);
  w.u64(m.evicted_events);
  w.str(m.artifact);
}

void decode(PayloadReader& r, DumpRecorderReply& m) {
  m.recorder_attached = r.u8();
  if (m.recorder_attached > 1) throw ProtocolError("bad recorder flag");
  m.buffered_events = r.u64();
  m.evicted_events = r.u64();
  m.artifact = r.str();
}

void encode(PayloadWriter& w, const ErrorReply& m) {
  w.u32(m.code);
  w.str(m.message);
}

void decode(PayloadReader& r, ErrorReply& m) {
  m.code = r.u32();
  m.message = r.str();
}

}  // namespace arbmis::serve
