// MisService — the serving layer's request brain (docs/SERVING.md).
//
// Owns the graph table, the result cache, and the incremental-repair
// logic; the TCP server (serve/server.h) is a thin framing shell around
// handle(). Everything here is deterministic in the request sequence:
// results are produced by the fault/resilient_mis certify-commit-retry
// driver running the paper's shattering pipeline with a zero-rate
// adversary, every repair is re-certified on the full graph by the
// distributed verifier, and no wall-clock, entropy, or iteration-order
// nondeterminism enters any reply (DET001–DET005 apply to this module).
//
// Cache: results are keyed by (graph content hash, alpha, seed) — NOT by
// graph id — so two ids holding identical content share entries, and an
// update batch that returns a graph to previously seen content hits the
// cache again. FIFO eviction, bounded by ServiceOptions::max_cache_entries.
//
// Incremental repair (the creative core): after an update batch, members
// of the previous MIS are kept unless the batch connected two members
// (both conflict endpoints are dropped — deterministic and symmetric);
// coverage is recomputed from the kept members on the new graph; the
// leftover residual (new vertices, uncovered ex-covered nodes, dropped
// members) is re-solved by the same pipeline on the induced subgraph and
// merged. If the residual exceeds full_recompute_fraction of the graph the
// service falls back to a full recompute. Either way the final labeling is
// certified on the full graph before it is cached or served.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "fault/resilient_mis.h"
#include "serve/dynamic_graph.h"
#include "serve/protocol.h"

namespace arbmis::serve {

/// A loaded graph plus the owner keeping its storage alive. The loader
/// callback hides graph/storage behind the GraphView seam: serve/ never
/// includes "graph/storage/...", hosts (tools/, tests/) inject a loader
/// that constructs MappedGraph and type-erases it into `owner`.
struct LoadedGraph {
  std::shared_ptr<void> owner;
  graph::GraphView view;
};

using GrLoader = std::function<LoadedGraph(const std::string& path)>;

struct ServiceOptions {
  /// Worker threads of the simulator executor (NetworkOptions::num_threads)
  /// — results are byte-identical across values by the PR 2 contract.
  std::uint32_t num_threads = 0;
  /// Repair falls back to a full recompute when the residual exceeds this
  /// fraction of the nodes.
  double full_recompute_fraction = 0.5;
  std::size_t max_cache_entries = 64;  ///< FIFO eviction bound
  std::uint32_t max_attempts = 16;     ///< forwarded to resilient_mis
  /// Loader for path-based LOAD_GRAPH; null rejects paths (kUnsupported).
  GrLoader gr_loader;
};

/// Deterministic 64-bit hash of a full labeling (chained util::mix64).
std::uint64_t labels_hash(const std::vector<mis::MisState>& state);

class MisService {
 public:
  explicit MisService(ServiceOptions options = {});

  // Typed operations. All throw ServeError on request-level failures.
  LoadGraphReply load_graph(const LoadGraphRequest& request);
  ComputeMisReply compute_mis(const ComputeMisRequest& request);
  QueryReply query(const QueryRequest& request);
  UpdateEdgesReply update_edges(const UpdateEdgesRequest& request);
  VerifyReply verify(const VerifyRequest& request);
  StatsReply stats() const;

  /// Full dispatch: decodes a request frame, runs the operation, returns
  /// the reply frame (kError frame on ServeError/ProtocolError). Emits the
  /// request_begin/request_end event pair. Thread-safe; requests serialize
  /// on one service mutex, so the event stream is ordered by arrival.
  Frame handle(const Frame& request);

 private:
  struct CacheKey {
    std::uint64_t content_hash = 0;
    std::uint32_t alpha = 0;
    std::uint64_t seed = 0;
    friend auto operator<=>(const CacheKey&, const CacheKey&) = default;
  };

  struct CacheEntry {
    std::vector<mis::MisState> state;
    std::uint64_t labels_hash = 0;
    std::uint64_t mis_size = 0;
    std::uint32_t attempts = 0;
    std::uint64_t rounds = 0;
    bool certified = false;
  };

  struct GraphSlot {
    DynamicGraph graph;
    std::uint64_t epoch = 0;  ///< update batches applied
  };

  struct RepairOutcome {
    CacheEntry entry;
    bool incremental = false;
    graph::NodeId residual = 0;
  };

  // Unlocked implementations; the public wrappers and handle() take mu_.
  LoadGraphReply load_impl(const LoadGraphRequest& request);
  ComputeMisReply compute_impl(const ComputeMisRequest& request);
  QueryReply query_impl(const QueryRequest& request);
  UpdateEdgesReply update_impl(const UpdateEdgesRequest& request);
  VerifyReply verify_impl(const VerifyRequest& request);

  GraphSlot& slot(std::uint64_t graph_id);
  /// Cache lookup + solve-on-miss; emits cache_hit/cache_miss.
  const CacheEntry& ensure_entry(std::uint64_t graph_id, GraphSlot& s,
                                 const ComputeParams& params, bool* hit);
  /// Full pipeline run (resilient_mis + certify) on `g`.
  CacheEntry solve_full(graph::GraphView g, const ComputeParams& params,
                        std::uint64_t run_seed);
  /// Incremental repair from `previous` (null = full), certified on `g`.
  RepairOutcome repair(std::uint64_t graph_id, std::uint64_t epoch,
                       graph::GraphView g,
                       const std::vector<mis::MisState>* previous,
                       const ComputeParams& params);
  void cache_insert(const CacheKey& key, CacheEntry entry);

  mutable std::mutex mu_;
  ServiceOptions options_;
  std::map<std::uint64_t, GraphSlot> graphs_;
  std::map<CacheKey, CacheEntry> cache_;
  std::vector<CacheKey> cache_order_;  ///< FIFO insertion order
  StatsReply stats_;
  std::uint64_t request_seq_ = 0;
};

}  // namespace arbmis::serve
