#include "serve/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

namespace arbmis::serve {

namespace {

void throw_errno(const std::string& what) {
  throw std::runtime_error("serve client: " + what + ": " +
                           std::strerror(errno));
}

/// Re-throws a kError reply as ServeError; returns the frame otherwise.
const Frame& check_reply(const Frame& reply, MsgType expected) {
  if (reply.type == MsgType::kError) {
    const auto err = parse_payload<ErrorReply>(reply);
    throw ServeError(static_cast<ErrorCode>(err.code), err.message);
  }
  if (reply.type != expected) {
    throw ProtocolError("unexpected reply type");
  }
  return reply;
}

}  // namespace

Client::Client(const std::string& host, std::uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) throw_errno("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error("serve client: bad host address " + host);
  }
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    const int saved = errno;
    ::close(fd_);
    fd_ = -1;
    errno = saved;
    throw_errno("connect");
  }
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

Frame Client::read_frame() {
  Frame reply;
  std::uint8_t buf[1 << 16];
  while (!reader_.next(reply)) {
    const ssize_t n = ::recv(fd_, buf, sizeof buf, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      throw std::runtime_error("serve client: connection closed by server");
    }
    reader_.feed(buf, static_cast<std::size_t>(n));
  }
  return reply;
}

Frame Client::call(Frame request) {
  request.request_id = next_request_id_++;
  const std::vector<std::uint8_t> bytes = encode_frame(request);
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n =
        ::send(fd_, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("send");
    }
    sent += static_cast<std::size_t>(n);
  }
  return read_frame();
}

Frame Client::roundtrip_raw(const std::vector<std::uint8_t>& bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n =
        ::send(fd_, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("send");
    }
    sent += static_cast<std::size_t>(n);
  }
  return read_frame();
}

LoadGraphReply Client::load_inline(std::uint64_t graph_id,
                                   graph::NodeId num_nodes,
                                   std::vector<graph::Edge> edges) {
  LoadGraphRequest m;
  m.graph_id = graph_id;
  m.num_nodes = num_nodes;
  m.edges = std::move(edges);
  const Frame reply = call(make_frame(MsgType::kLoadGraph, 0, m));
  return parse_payload<LoadGraphReply>(
      check_reply(reply, MsgType::kReplyLoadGraph));
}

LoadGraphReply Client::load_path(std::uint64_t graph_id,
                                 const std::string& path) {
  LoadGraphRequest m;
  m.graph_id = graph_id;
  m.from_path = true;
  m.path = path;
  const Frame reply = call(make_frame(MsgType::kLoadGraph, 0, m));
  return parse_payload<LoadGraphReply>(
      check_reply(reply, MsgType::kReplyLoadGraph));
}

ComputeMisReply Client::compute(std::uint64_t graph_id,
                                const ComputeParams& params) {
  const ComputeMisRequest m{graph_id, params};
  const Frame reply = call(make_frame(MsgType::kComputeMis, 0, m));
  return parse_payload<ComputeMisReply>(
      check_reply(reply, MsgType::kReplyComputeMis));
}

QueryReply Client::query(std::uint64_t graph_id, const ComputeParams& params,
                         std::vector<graph::NodeId> nodes) {
  QueryRequest m;
  m.graph_id = graph_id;
  m.params = params;
  m.nodes = std::move(nodes);
  const Frame reply = call(make_frame(MsgType::kQuery, 0, m));
  return parse_payload<QueryReply>(check_reply(reply, MsgType::kReplyQuery));
}

UpdateEdgesReply Client::update(std::uint64_t graph_id,
                                const ComputeParams& params,
                                std::vector<EdgeUpdate> ops) {
  UpdateEdgesRequest m;
  m.graph_id = graph_id;
  m.params = params;
  m.ops = std::move(ops);
  const Frame reply = call(make_frame(MsgType::kUpdateEdges, 0, m));
  return parse_payload<UpdateEdgesReply>(
      check_reply(reply, MsgType::kReplyUpdateEdges));
}

VerifyReply Client::verify(std::uint64_t graph_id,
                           const ComputeParams& params) {
  const VerifyRequest m{graph_id, params};
  const Frame reply = call(make_frame(MsgType::kVerify, 0, m));
  return parse_payload<VerifyReply>(
      check_reply(reply, MsgType::kReplyVerify));
}

StatsReply Client::stats() {
  Frame request;
  request.type = MsgType::kStats;
  const Frame reply = call(std::move(request));
  return parse_payload<StatsReply>(
      check_reply(reply, MsgType::kReplyStats));
}

MetricsReply Client::metrics() {
  const MetricsRequest m;
  const Frame reply = call(make_frame(MsgType::kMetrics, 0, m));
  return parse_payload<MetricsReply>(
      check_reply(reply, MsgType::kReplyMetrics));
}

DumpRecorderReply Client::dump_recorder(bool clear_after) {
  DumpRecorderRequest m;
  m.clear_after = clear_after ? 1 : 0;
  const Frame reply = call(make_frame(MsgType::kDumpRecorder, 0, m));
  return parse_payload<DumpRecorderReply>(
      check_reply(reply, MsgType::kReplyDumpRecorder));
}

}  // namespace arbmis::serve
