#include "serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace arbmis::serve {

namespace {

void close_quiet(int fd) {
  if (fd >= 0) ::close(fd);
}

/// Full send with EINTR handling; returns false when the peer went away.
bool send_all(int fd, const std::uint8_t* data, std::size_t size) {
  std::size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

Server::Server(MisService& service, const ServerOptions& options)
    : service_(service) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw std::runtime_error(std::string("serve: socket: ") +
                             std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options.port);
  if (::inet_pton(AF_INET, options.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    close_quiet(listen_fd_);
    throw std::runtime_error("serve: bad bind address " +
                             options.bind_address);
  }
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0 ||
      ::listen(listen_fd_, options.backlog) != 0) {
    const std::string what = std::strerror(errno);
    close_quiet(listen_fd_);
    throw std::runtime_error("serve: bind/listen: " + what);
  }
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) !=
      0) {
    const std::string what = std::strerror(errno);
    close_quiet(listen_fd_);
    throw std::runtime_error("serve: getsockname: " + what);
  }
  port_ = ntohs(bound.sin_port);
}

Server::~Server() { stop(); }

void Server::serve_forever() { accept_loop(); }

void Server::start() {
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void Server::accept_loop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listener closed by stop()
    }
    const std::lock_guard<std::mutex> lock(conn_mu_);
    if (stopping_.load(std::memory_order_acquire)) {
      close_quiet(fd);
      break;
    }
    conn_fds_.push_back(fd);
    conn_threads_.emplace_back([this, fd] { connection_loop(fd); });
  }
}

void Server::connection_loop(int fd) {
  FrameReader reader;
  std::uint8_t buf[1 << 16];
  Frame request;
  bool alive = true;
  while (alive) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;  // EOF or error (including shutdown() from stop())
    try {
      reader.feed(buf, static_cast<std::size_t>(n));
      while (alive && reader.next(request)) {
        const Frame reply = service_.handle(request);
        const std::vector<std::uint8_t> bytes = encode_frame(reply);
        if (!send_all(fd, bytes.data(), bytes.size())) alive = false;
      }
    } catch (const ProtocolError& e) {
      // Framing is unrecoverable: best-effort error frame, then hang up.
      Frame err;
      err.type = MsgType::kError;
      err.request_id = 0;
      PayloadWriter w(err.payload);
      encode(w, ErrorReply{static_cast<std::uint32_t>(
                               ErrorCode::kBadRequest),
                           e.what()});
      const std::vector<std::uint8_t> bytes = encode_frame(err);
      send_all(fd, bytes.data(), bytes.size());
      alive = false;
    }
  }
  {
    // De-register before closing so stop() never shuts down a recycled fd.
    const std::lock_guard<std::mutex> lock(conn_mu_);
    std::erase(conn_fds_, fd);
  }
  ::shutdown(fd, SHUT_RDWR);
  close_quiet(fd);
}

void Server::stop() {
  if (stopping_.exchange(true, std::memory_order_acq_rel)) {
    // Second stop(): threads may already be joined; nothing left to do.
  }
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    close_quiet(listen_fd_);
    listen_fd_ = -1;
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<int> fds;
  std::vector<std::thread> threads;
  {
    const std::lock_guard<std::mutex> lock(conn_mu_);
    fds.swap(conn_fds_);
    threads.swap(conn_threads_);
  }
  for (const int fd : fds) ::shutdown(fd, SHUT_RDWR);
  for (std::thread& t : threads) {
    if (t.joinable()) t.join();
  }
}

}  // namespace arbmis::serve
