// Blocking TCP front end for MisService (docs/SERVING.md).
//
// One accept loop plus one thread per connection; every connection owns a
// FrameReader and forwards complete frames to MisService::handle, which
// serializes requests on the service mutex. Threading here affects only
// I/O concurrency — result bytes are governed by the simulator executor's
// thread count (ServiceOptions::num_threads) and are identical regardless
// of how many connections are in flight.
//
// A malformed frame (ProtocolError from the reader) sends one best-effort
// kError reply and drops the connection: framing errors are not
// recoverable mid-stream.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/service.h"

namespace arbmis::serve {

struct ServerOptions {
  std::string bind_address = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0 = ephemeral; read back with port()
  int backlog = 64;
};

class Server {
 public:
  /// Binds and listens immediately; throws std::runtime_error on failure.
  Server(MisService& service, const ServerOptions& options);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  std::uint16_t port() const noexcept { return port_; }

  /// Runs the accept loop on the calling thread until stop() (daemon use).
  void serve_forever();
  /// Runs the accept loop on a background thread (tests, benches).
  void start();
  /// Stops accepting, closes every connection, joins all threads.
  void stop();

 private:
  void accept_loop();
  void connection_loop(int fd);

  MisService& service_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;
  std::mutex conn_mu_;
  std::vector<int> conn_fds_;
  std::vector<std::thread> conn_threads_;
};

}  // namespace arbmis::serve
