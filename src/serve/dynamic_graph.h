// Mutable graph wrapper behind the serving layer (docs/SERVING.md).
//
// A DynamicGraph starts from either an in-memory Graph or any GraphView
// (e.g. one backed by an mmap-mapped .gr file, whose owner is carried as a
// type-erased shared_ptr so serve/ never names graph/storage types). The
// base storage is used zero-copy until the first update batch; applying a
// batch materializes an in-memory copy, edits the edge set, and rebuilds
// the CSR — update batches are rare relative to reads, so per-batch O(n+m)
// rebuild keeps every read on the same immutable-CSR fast path as the rest
// of the repo.
//
// Update semantics (all deterministic):
//   * kInsertEdge {u,v}: u != v, both < n; inserting an existing edge is a
//     no-op.
//   * kRemoveEdge {u,v}: removing a non-edge is a no-op.
//   * kAddVertex: appends one isolated vertex (its id is the node count at
//     the time the op executes; ids are stable, never reused).
//   * kDetachVertex u: removes every edge incident to u. The vertex stays,
//     isolated, keeping all other ids stable.
// Ops inside a batch apply sequentially; a batch is atomic — any invalid
// op (self-loop, out-of-range id) rejects the whole batch unapplied.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "graph/graph.h"
#include "serve/protocol.h"

namespace arbmis::serve {

class DynamicGraph {
 public:
  DynamicGraph() = default;

  /// Takes ownership of an in-memory graph.
  explicit DynamicGraph(graph::Graph g);

  /// Wraps externally owned storage (e.g. a MappedGraph); `owner` keeps the
  /// bytes behind `view` alive. Zero-copy until the first update batch.
  DynamicGraph(graph::GraphView view, std::shared_ptr<void> owner);

  graph::GraphView view() const noexcept {
    return materialized_ ? graph::GraphView(current_) : base_view_;
  }

  graph::NodeId num_nodes() const noexcept { return view().num_nodes(); }
  std::uint64_t num_edges() const noexcept { return view().num_edges(); }

  /// Structural hash of the current content (graph::content_hash), cached
  /// until the next update batch.
  std::uint64_t content_hash() const;

  /// Applies one batch atomically. Throws ServeError(kBadRequest) on any
  /// invalid op, leaving the graph untouched. Returns ops actually applied
  /// (no-ops excluded).
  std::uint64_t apply(std::span<const EdgeUpdate> ops);

 private:
  void materialize();

  std::shared_ptr<void> owner_;
  graph::GraphView base_view_;
  graph::Graph current_{0};
  bool materialized_ = false;
  mutable std::optional<std::uint64_t> hash_;
};

}  // namespace arbmis::serve
