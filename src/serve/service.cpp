#include "serve/service.h"

#include <algorithm>
#include <exception>
#include <utility>

#include "fault/adversary.h"
#include "graph/subgraph.h"
#include "obs/events.h"
#include "obs/recorder.h"
#include "obs/registry.h"
#include "obs/sink.h"
#include "obs/span.h"
#include "util/rng.h"

namespace arbmis::serve {

namespace {

/// Salt separating the repair-time verifier seed from the pipeline seed.
constexpr std::uint64_t kCertifySalt = 0x43455254;  // "CERT"

std::uint64_t count_members(const std::vector<mis::MisState>& state) {
  return static_cast<std::uint64_t>(
      std::count(state.begin(), state.end(), mis::MisState::kInMis));
}

const char* op_name(MsgType type) {
  switch (type) {
    case MsgType::kLoadGraph: return "load_graph";
    case MsgType::kComputeMis: return "compute_mis";
    case MsgType::kQuery: return "query";
    case MsgType::kUpdateEdges: return "update_edges";
    case MsgType::kVerify: return "verify";
    case MsgType::kStats: return "stats";
    case MsgType::kMetrics: return "metrics";
    case MsgType::kDumpRecorder: return "dump_recorder";
    default: return "unknown";
  }
}

}  // namespace

std::uint64_t labels_hash(const std::vector<mis::MisState>& state) {
  std::uint64_t h = util::mix64(0x4C41424Cu /*"LABL"*/, state.size());
  for (const mis::MisState s : state) {
    h = util::mix64(h, static_cast<std::uint64_t>(s));
  }
  return h;
}

MisService::MisService(ServiceOptions options)
    : options_(std::move(options)) {
  if (options_.max_cache_entries == 0) options_.max_cache_entries = 1;
}

MisService::GraphSlot& MisService::slot(std::uint64_t graph_id) {
  const auto it = graphs_.find(graph_id);
  if (it == graphs_.end()) {
    throw ServeError(ErrorCode::kUnknownGraph, "graph id not loaded");
  }
  return it->second;
}

void MisService::cache_insert(const CacheKey& key, CacheEntry entry) {
  const auto [it, inserted] = cache_.insert_or_assign(key, std::move(entry));
  (void)it;
  if (inserted) cache_order_.push_back(key);
  while (cache_.size() > options_.max_cache_entries) {
    cache_.erase(cache_order_.front());
    cache_order_.erase(cache_order_.begin());
    ++stats_.cache_evictions;
  }
}

MisService::CacheEntry MisService::solve_full(graph::GraphView g,
                                              const ComputeParams& params,
                                              std::uint64_t run_seed) {
  // Zero-rate adversary: the serving path reuses the certify-commit-retry
  // driver purely for its certification loop — no faults are injected.
  fault::IidAdversary adversary{fault::IidOptions{}};
  fault::ResilientOptions opts;
  opts.max_attempts = options_.max_attempts;
  opts.fault_free_after = 0;
  opts.num_threads = options_.num_threads;
  const fault::ResilientResult result = fault::resilient_mis(
      g, run_seed, adversary,
      fault::shatter_driver(static_cast<graph::NodeId>(params.alpha)), opts);
  CacheEntry entry;
  entry.state = result.state;
  entry.certified = result.certified;
  entry.attempts = result.attempts;
  entry.rounds = result.rounds_to_recovery;
  entry.mis_size = count_members(entry.state);
  entry.labels_hash = labels_hash(entry.state);
  return entry;
}

const MisService::CacheEntry& MisService::ensure_entry(
    std::uint64_t graph_id, GraphSlot& s, const ComputeParams& params,
    bool* hit) {
  const CacheKey key{s.graph.content_hash(), params.alpha, params.seed};
  const std::uint64_t key_hash =
      util::mix64(util::mix64(key.content_hash, key.alpha), key.seed);
  if (const auto it = cache_.find(key); it != cache_.end()) {
    *hit = true;
    ++stats_.cache_hits;
    obs::emit(obs::make_event(obs::EventKind::kCacheHit, /*round=*/0, {},
                              graph_id, params.seed, key_hash));
    return it->second;
  }
  *hit = false;
  ++stats_.cache_misses;
  obs::emit(obs::make_event(obs::EventKind::kCacheMiss, /*round=*/0, {},
                            graph_id, params.seed, key_hash));
  CacheEntry entry = solve_full(s.graph.view(), params, params.seed);
  if (!entry.certified) {
    throw ServeError(ErrorCode::kInternal, "pipeline failed to certify");
  }
  cache_insert(key, std::move(entry));
  return cache_.find(key)->second;
}

MisService::RepairOutcome MisService::repair(
    std::uint64_t graph_id, std::uint64_t epoch, graph::GraphView g,
    const std::vector<mis::MisState>* previous, const ComputeParams& params) {
  const obs::ScopedChildSpan repair_span("serve.repair", graph_id);
  const graph::NodeId n = g.num_nodes();
  const std::uint64_t repair_seed = util::mix64(params.seed, epoch);
  RepairOutcome out;

  bool full = previous == nullptr;
  graph::NodeId residual_count = n;
  std::vector<mis::MisState> state(n, mis::MisState::kUndecided);
  if (!full) {
    // Keep previous members unless the update connected two of them; both
    // conflict endpoints are dropped (symmetric, hence deterministic).
    std::vector<std::uint8_t> member(n, 0);
    const graph::NodeId prev_n = static_cast<graph::NodeId>(
        std::min<std::size_t>(previous->size(), n));
    for (graph::NodeId v = 0; v < prev_n; ++v) {
      member[v] = (*previous)[v] == mis::MisState::kInMis ? 1 : 0;
    }
    std::vector<std::uint8_t> drop(n, 0);
    for (graph::NodeId v = 0; v < n; ++v) {
      if (member[v] == 0) continue;
      for (const graph::NodeId w : g.neighbors(v)) {
        if (member[w] != 0) {
          drop[v] = 1;
          drop[w] = 1;
        }
      }
    }
    for (graph::NodeId v = 0; v < n; ++v) {
      if (member[v] != 0 && drop[v] == 0) state[v] = mis::MisState::kInMis;
    }
    // Coverage is recomputed from the kept members on the *new* graph —
    // an ex-covered node whose last member neighbor disappeared falls into
    // the residual, exactly like a brand-new vertex.
    for (graph::NodeId v = 0; v < n; ++v) {
      if (state[v] != mis::MisState::kInMis) continue;
      for (const graph::NodeId w : g.neighbors(v)) {
        if (state[w] == mis::MisState::kUndecided) {
          state[w] = mis::MisState::kCovered;
        }
      }
    }
    residual_count = static_cast<graph::NodeId>(
        std::count(state.begin(), state.end(), mis::MisState::kUndecided));
    if (static_cast<double>(residual_count) >
        options_.full_recompute_fraction * static_cast<double>(n)) {
      full = true;
      residual_count = n;
    }
  }

  obs::emit(obs::make_event(obs::EventKind::kRepairBegin, /*round=*/0, {},
                            graph_id, epoch, residual_count, full ? 1 : 0));

  if (full) {
    out.entry = solve_full(g, params, repair_seed);
    out.incremental = false;
    out.residual = n;
    ++stats_.repairs_full;
  } else {
    std::uint32_t attempts = 0;
    std::uint64_t rounds = 0;
    bool sub_ok = true;
    if (residual_count > 0) {
      std::vector<std::uint8_t> mask(n, 0);
      for (graph::NodeId v = 0; v < n; ++v) {
        mask[v] = state[v] == mis::MisState::kUndecided ? 1 : 0;
      }
      const graph::Subgraph sub = graph::induced_subgraph(g, mask);
      const CacheEntry sub_entry =
          solve_full(sub.graph, params, repair_seed);
      attempts = sub_entry.attempts;
      rounds = sub_entry.rounds;
      sub_ok = sub_entry.certified;
      if (sub_ok) {
        for (graph::NodeId local = 0; local < sub.graph.num_nodes();
             ++local) {
          state[sub.to_original[local]] = sub_entry.state[local];
        }
      }
    }
    if (!sub_ok) {
      // The residual run failed to certify (pipeline exhausted attempts);
      // fall back to a full recompute rather than serve a dubious merge.
      out.entry = solve_full(g, params, repair_seed);
      out.incremental = false;
      out.residual = n;
      ++stats_.repairs_full;
    } else {
      // Independent re-certification of the merged labeling on the full
      // graph — the merge argument is sound, but we never serve a repair
      // the distributed verifier has not signed off on.
      const fault::CertifyReport report = fault::certify_labels(
          g, state, util::mix64(repair_seed, kCertifySalt));
      out.entry.state = std::move(state);
      out.entry.certified = report.certified;
      out.entry.attempts = attempts;
      out.entry.rounds = rounds + report.rounds;
      out.entry.mis_size = count_members(out.entry.state);
      out.entry.labels_hash = labels_hash(out.entry.state);
      out.incremental = true;
      out.residual = residual_count;
      ++stats_.repairs_incremental;
    }
  }
  if (out.entry.certified) ++stats_.repairs_certified;
  obs::emit(obs::make_event(obs::EventKind::kRepairCertified, /*round=*/0, {},
                            graph_id, epoch, out.entry.certified ? 1 : 0,
                            out.entry.mis_size, out.entry.rounds));
  return out;
}

LoadGraphReply MisService::load_graph(const LoadGraphRequest& request) {
  const std::lock_guard<std::mutex> lock(mu_);
  return load_impl(request);
}

ComputeMisReply MisService::compute_mis(const ComputeMisRequest& request) {
  const std::lock_guard<std::mutex> lock(mu_);
  return compute_impl(request);
}

QueryReply MisService::query(const QueryRequest& request) {
  const std::lock_guard<std::mutex> lock(mu_);
  return query_impl(request);
}

UpdateEdgesReply MisService::update_edges(const UpdateEdgesRequest& request) {
  const std::lock_guard<std::mutex> lock(mu_);
  return update_impl(request);
}

VerifyReply MisService::verify(const VerifyRequest& request) {
  const std::lock_guard<std::mutex> lock(mu_);
  return verify_impl(request);
}

StatsReply MisService::stats() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

LoadGraphReply MisService::load_impl(const LoadGraphRequest& request) {
  GraphSlot s;
  if (request.from_path) {
    if (!options_.gr_loader) {
      throw ServeError(ErrorCode::kUnsupported,
                       "path loads not configured on this server");
    }
    LoadedGraph loaded;
    try {
      loaded = options_.gr_loader(request.path);
    } catch (const std::exception& e) {
      throw ServeError(ErrorCode::kBadRequest, e.what());
    }
    s.graph = DynamicGraph(loaded.view, std::move(loaded.owner));
  } else {
    try {
      s.graph = DynamicGraph(
          graph::from_edges(request.num_nodes, request.edges));
    } catch (const std::exception& e) {
      throw ServeError(ErrorCode::kBadRequest, e.what());
    }
  }
  LoadGraphReply reply;
  reply.num_nodes = s.graph.num_nodes();
  reply.num_edges = s.graph.num_edges();
  reply.content_hash = s.graph.content_hash();
  graphs_.insert_or_assign(request.graph_id, std::move(s));
  ++stats_.graphs_loaded;
  return reply;
}

ComputeMisReply MisService::compute_impl(const ComputeMisRequest& request) {
  GraphSlot& s = slot(request.graph_id);
  ++stats_.computes;
  bool hit = false;
  const CacheEntry& entry =
      ensure_entry(request.graph_id, s, request.params, &hit);
  ComputeMisReply reply;
  reply.mis_size = entry.mis_size;
  reply.labels_hash = entry.labels_hash;
  reply.content_hash = s.graph.content_hash();
  reply.cache_hit = hit ? 1 : 0;
  reply.certified = entry.certified ? 1 : 0;
  reply.attempts = entry.attempts;
  reply.rounds = entry.rounds;
  return reply;
}

QueryReply MisService::query_impl(const QueryRequest& request) {
  GraphSlot& s = slot(request.graph_id);
  ++stats_.queries;
  bool hit = false;
  const CacheEntry& entry =
      ensure_entry(request.graph_id, s, request.params, &hit);
  QueryReply reply;
  reply.cache_hit = hit ? 1 : 0;
  reply.states.reserve(request.nodes.size());
  const graph::NodeId n = s.graph.num_nodes();
  for (const graph::NodeId v : request.nodes) {
    if (v >= n) {
      throw ServeError(ErrorCode::kBadRequest, "query: node out of range");
    }
    reply.states.push_back(static_cast<std::uint8_t>(entry.state[v]));
  }
  return reply;
}

UpdateEdgesReply MisService::update_impl(const UpdateEdgesRequest& request) {
  GraphSlot& s = slot(request.graph_id);
  ++stats_.updates;

  // The previous labeling (if this params key was ever computed for the
  // pre-update content) seeds the incremental repair. Copied out because
  // the repair may evict cache entries.
  const CacheKey old_key{s.graph.content_hash(), request.params.alpha,
                         request.params.seed};
  std::vector<mis::MisState> previous;
  bool have_previous = false;
  if (const auto it = cache_.find(old_key); it != cache_.end()) {
    previous = it->second.state;
    have_previous = true;
  }

  stats_.update_ops += s.graph.apply(request.ops);
  ++s.epoch;

  RepairOutcome out =
      repair(request.graph_id, s.epoch, s.graph.view(),
             have_previous ? &previous : nullptr, request.params);
  const std::uint64_t new_hash = s.graph.content_hash();
  if (out.entry.certified) {
    cache_insert(CacheKey{new_hash, request.params.alpha,
                          request.params.seed},
                 out.entry);
  }

  UpdateEdgesReply reply;
  reply.epoch = s.epoch;
  reply.incremental = out.incremental ? 1 : 0;
  reply.certified = out.entry.certified ? 1 : 0;
  reply.residual = out.residual;
  reply.mis_size = out.entry.mis_size;
  reply.labels_hash = out.entry.labels_hash;
  reply.content_hash = new_hash;
  return reply;
}

VerifyReply MisService::verify_impl(const VerifyRequest& request) {
  GraphSlot& s = slot(request.graph_id);
  ++stats_.verifies;
  bool hit = false;
  const CacheEntry& entry =
      ensure_entry(request.graph_id, s, request.params, &hit);
  // Fresh certification pass — VERIFY never trusts the cached verdict.
  const fault::CertifyReport report = fault::certify_labels(
      s.graph.view(), entry.state,
      util::mix64(request.params.seed, kCertifySalt));
  VerifyReply reply;
  reply.ok = report.certified ? 1 : 0;
  reply.mis_size = entry.mis_size;
  reply.labels_hash = entry.labels_hash;
  return reply;
}

Frame MisService::handle(const Frame& request) {
  const std::lock_guard<std::mutex> lock(mu_);
  const std::uint64_t req = ++request_seq_;
  ++stats_.requests_total;
  // Root span per request: the id is the deterministic request sequence
  // number (nonzero — pre-incremented), the ref echoes the client-chosen
  // request id. Child spans below (repair, resilient_mis, Network::run)
  // activate only inside this bracket.
  const obs::ScopedSpan span(op_name(request.type), req,
                             request.request_id);
  Frame reply;
  reply.request_id = request.request_id;
  std::uint32_t status = 0;
  try {
    switch (request.type) {
      case MsgType::kLoadGraph: {
        const auto m = parse_payload<LoadGraphRequest>(request);
        obs::emit(obs::make_event(obs::EventKind::kRequestBegin, 0,
                                  op_name(request.type), req, m.graph_id));
        reply = make_frame(MsgType::kReplyLoadGraph, request.request_id,
                           load_impl(m));
        break;
      }
      case MsgType::kComputeMis: {
        const auto m = parse_payload<ComputeMisRequest>(request);
        obs::emit(obs::make_event(obs::EventKind::kRequestBegin, 0,
                                  op_name(request.type), req, m.graph_id));
        reply = make_frame(MsgType::kReplyComputeMis, request.request_id,
                           compute_impl(m));
        break;
      }
      case MsgType::kQuery: {
        const auto m = parse_payload<QueryRequest>(request);
        obs::emit(obs::make_event(obs::EventKind::kRequestBegin, 0,
                                  op_name(request.type), req, m.graph_id));
        reply = make_frame(MsgType::kReplyQuery, request.request_id,
                           query_impl(m));
        break;
      }
      case MsgType::kUpdateEdges: {
        const auto m = parse_payload<UpdateEdgesRequest>(request);
        obs::emit(obs::make_event(obs::EventKind::kRequestBegin, 0,
                                  op_name(request.type), req, m.graph_id));
        reply = make_frame(MsgType::kReplyUpdateEdges, request.request_id,
                           update_impl(m));
        break;
      }
      case MsgType::kVerify: {
        const auto m = parse_payload<VerifyRequest>(request);
        obs::emit(obs::make_event(obs::EventKind::kRequestBegin, 0,
                                  op_name(request.type), req, m.graph_id));
        reply = make_frame(MsgType::kReplyVerify, request.request_id,
                           verify_impl(m));
        break;
      }
      case MsgType::kStats: {
        if (!request.payload.empty()) {
          throw ProtocolError("stats request carries a payload");
        }
        obs::emit(obs::make_event(obs::EventKind::kRequestBegin, 0,
                                  op_name(request.type), req, 0));
        reply =
            make_frame(MsgType::kReplyStats, request.request_id, stats_);
        break;
      }
      case MsgType::kMetrics: {
        const auto m = parse_payload<MetricsRequest>(request);
        obs::emit(obs::make_event(obs::EventKind::kRequestBegin, 0,
                                  op_name(request.type), req, 0));
        MetricsReply mr;
        mr.version = m.version;
        // No embedded manifest: the snapshot must stay a deterministic
        // function of the request sequence (manifests carry thread/inbox
        // provenance that legitimately varies across executors).
        if (const obs::Registry* const reg = obs::registry()) {
          mr.json = reg->to_json();
        } else {
          mr.json = std::string("{\"schema\":\"") +
                    obs::kMetricsSchemaVersion +
                    "\",\"counters\":{},\"gauges\":{},\"histograms\":{},"
                    "\"rounds\":{}}";
        }
        reply = make_frame(MsgType::kReplyMetrics, request.request_id, mr);
        break;
      }
      case MsgType::kDumpRecorder: {
        const auto m = parse_payload<DumpRecorderRequest>(request);
        obs::emit(obs::make_event(obs::EventKind::kRequestBegin, 0,
                                  op_name(request.type), req, 0));
        DumpRecorderReply dr;
        if (obs::FlightRecorder* const rec = obs::recorder()) {
          dr.recorder_attached = 1;
          const obs::RecorderStats rs = rec->stats();
          dr.buffered_events = rs.buffered_events;
          dr.evicted_events = rs.evicted_events;
          dr.artifact = rec->snapshot("dump_recorder_request");
          if (m.clear_after != 0) rec->clear();
        }
        reply = make_frame(MsgType::kReplyDumpRecorder, request.request_id,
                           dr);
        break;
      }
      default:
        throw ServeError(ErrorCode::kBadRequest, "not a request type");
    }
  } catch (const ProtocolError& e) {
    ++stats_.errors;
    status = static_cast<std::uint32_t>(ErrorCode::kBadRequest);
    reply = make_frame(MsgType::kError, request.request_id,
                       ErrorReply{status, e.what()});
  } catch (const ServeError& e) {
    ++stats_.errors;
    status = static_cast<std::uint32_t>(e.code());
    reply = make_frame(MsgType::kError, request.request_id,
                       ErrorReply{status, e.what()});
  } catch (const std::exception& e) {
    ++stats_.errors;
    status = static_cast<std::uint32_t>(ErrorCode::kInternal);
    reply = make_frame(MsgType::kError, request.request_id,
                       ErrorReply{status, e.what()});
  }
  obs::emit(obs::make_event(obs::EventKind::kRequestEnd, 0, {}, req, status,
                            reply.payload.size()));
  // Registry feed: requests serialize on mu_, so this is a second
  // sanctioned deterministic metering point (tools/layering.toml).
  if (obs::Registry* const reg = obs::registry()) {
    reg->add("serve.requests");
    reg->add(std::string("serve.req.") + op_name(request.type));
    if (status != 0) reg->add("serve.errors");
    reg->set("serve.graphs", static_cast<std::int64_t>(graphs_.size()));
    reg->set("serve.cache.entries",
             static_cast<std::int64_t>(cache_.size()));
    reg->add("serve.reply_payload_bytes", reply.payload.size());
  }
  return reply;
}

}  // namespace arbmis::serve
