// Blocking TCP client for the serving protocol (docs/SERVING.md).
//
// One connection, synchronous call/response; request ids auto-increment
// per client. Typed helpers parse the reply payload and throw ServeError
// when the server answered with a kError frame, ProtocolError on malformed
// reply bytes, and std::runtime_error on transport failures. Used by
// tools/mis_loadgen, bench/bench_serve, and the protocol tests.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "serve/protocol.h"

namespace arbmis::serve {

class Client {
 public:
  /// Connects immediately; throws std::runtime_error on failure.
  Client(const std::string& host, std::uint16_t port);
  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Raw round trip: sends `request` (stamping the next request id) and
  /// returns the reply frame, whatever its type.
  Frame call(Frame request);

  // Typed round trips (throw ServeError on kError replies).
  LoadGraphReply load_inline(std::uint64_t graph_id, graph::NodeId num_nodes,
                             std::vector<graph::Edge> edges);
  LoadGraphReply load_path(std::uint64_t graph_id, const std::string& path);
  ComputeMisReply compute(std::uint64_t graph_id, const ComputeParams& params);
  QueryReply query(std::uint64_t graph_id, const ComputeParams& params,
                   std::vector<graph::NodeId> nodes);
  UpdateEdgesReply update(std::uint64_t graph_id, const ComputeParams& params,
                          std::vector<EdgeUpdate> ops);
  VerifyReply verify(std::uint64_t graph_id, const ComputeParams& params);
  StatsReply stats();
  MetricsReply metrics();
  DumpRecorderReply dump_recorder(bool clear_after = false);

  /// Sends raw bytes as-is (malformed-frame tests) and reads one reply.
  Frame roundtrip_raw(const std::vector<std::uint8_t>& bytes);

 private:
  Frame read_frame();

  int fd_ = -1;
  std::uint64_t next_request_id_ = 1;
  FrameReader reader_;
};

}  // namespace arbmis::serve
