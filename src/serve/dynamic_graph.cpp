#include "serve/dynamic_graph.h"

#include <algorithm>
#include <limits>
#include <string>
#include <utility>

namespace arbmis::serve {

DynamicGraph::DynamicGraph(graph::Graph g)
    : current_(std::move(g)), materialized_(true) {}

DynamicGraph::DynamicGraph(graph::GraphView view, std::shared_ptr<void> owner)
    : owner_(std::move(owner)), base_view_(view) {}

std::uint64_t DynamicGraph::content_hash() const {
  if (!hash_.has_value()) hash_ = graph::content_hash(view());
  return *hash_;
}

void DynamicGraph::materialize() {
  if (materialized_) return;
  current_ = graph::from_edges(base_view_.num_nodes(), base_view_.edges());
  materialized_ = true;
  owner_.reset();
  base_view_ = graph::GraphView();
}

std::uint64_t DynamicGraph::apply(std::span<const EdgeUpdate> ops) {
  materialize();
  // Work on a sorted unique edge list; commit by rebuilding the CSR only
  // after the whole batch validated.
  std::vector<graph::Edge> edges = current_.edges();
  graph::NodeId n = current_.num_nodes();
  std::uint64_t applied = 0;

  const auto find = [&edges](graph::NodeId u, graph::NodeId v) {
    if (u > v) std::swap(u, v);
    const graph::Edge e{u, v};
    return std::pair{std::lower_bound(edges.begin(), edges.end(), e), e};
  };

  for (const EdgeUpdate& op : ops) {
    switch (op.op) {
      case UpdateOp::kInsertEdge: {
        if (op.u == op.v) {
          throw ServeError(ErrorCode::kBadRequest, "insert_edge: self-loop");
        }
        if (op.u >= n || op.v >= n) {
          throw ServeError(ErrorCode::kBadRequest,
                           "insert_edge: endpoint out of range");
        }
        const auto [it, e] = find(op.u, op.v);
        if (it == edges.end() || !(*it == e)) {
          edges.insert(it, e);
          ++applied;
        }
        break;
      }
      case UpdateOp::kRemoveEdge: {
        if (op.u >= n || op.v >= n) {
          throw ServeError(ErrorCode::kBadRequest,
                           "remove_edge: endpoint out of range");
        }
        const auto [it, e] = find(op.u, op.v);
        if (it != edges.end() && *it == e) {
          edges.erase(it);
          ++applied;
        }
        break;
      }
      case UpdateOp::kAddVertex: {
        if (n == std::numeric_limits<graph::NodeId>::max()) {
          throw ServeError(ErrorCode::kBadRequest, "add_vertex: id overflow");
        }
        ++n;
        ++applied;
        break;
      }
      case UpdateOp::kDetachVertex: {
        if (op.u >= n) {
          throw ServeError(ErrorCode::kBadRequest,
                           "detach_vertex: id out of range");
        }
        const std::size_t before = edges.size();
        std::erase_if(edges, [&op](const graph::Edge& e) {
          return e.u == op.u || e.v == op.u;
        });
        if (edges.size() != before) ++applied;
        break;
      }
    }
  }

  current_ = graph::from_edges(n, edges);
  hash_.reset();
  return applied;
}

}  // namespace arbmis::serve
