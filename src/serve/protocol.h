// Wire protocol of the MIS serving daemon (docs/SERVING.md).
//
// Every message is one length-prefixed frame: a fixed 20-byte little-endian
// header (magic "AMSP", protocol version, message type, request id, payload
// length) followed by `payload_len` bytes of type-specific payload. Replies
// echo the request id; the reply type is the request type + 128, and errors
// use the dedicated kError type. All integers are little-endian and the
// decoder is strict: unknown magic/version/type, truncated payloads, and
// trailing payload bytes are all rejected with ProtocolError — a malformed
// frame can never be half-read.
//
// Determinism contract: encode/decode are pure byte-for-byte inverses with
// no timestamps, process ids, or other ambient state in any frame, so a
// reply is a deterministic function of the request sequence alone.
#pragma once

#include <cstdint>
#include <deque>
#include <stdexcept>
#include <string>
#include <vector>

#include "graph/graph.h"

namespace arbmis::serve {

inline constexpr std::uint32_t kMagic = 0x50534D41u;  // "AMSP" little-endian
inline constexpr std::uint16_t kProtocolVersion = 1;
inline constexpr std::size_t kFrameHeaderBytes = 20;
/// Hard cap on one frame's payload; a header announcing more is malformed.
inline constexpr std::uint32_t kMaxPayloadBytes = 1u << 28;

enum class MsgType : std::uint16_t {
  kLoadGraph = 1,
  kComputeMis = 2,
  kQuery = 3,
  kUpdateEdges = 4,
  kVerify = 5,
  kStats = 6,
  // Introspection (obs v2): live metrics and flight-recorder access.
  // Additive at protocol version 1 — old clients never send them, old
  // servers reject them as unknown types.
  kMetrics = 7,
  kDumpRecorder = 8,
  kReplyLoadGraph = 129,
  kReplyComputeMis = 130,
  kReplyQuery = 131,
  kReplyUpdateEdges = 132,
  kReplyVerify = 133,
  kReplyStats = 134,
  kReplyMetrics = 135,
  kReplyDumpRecorder = 136,
  kError = 255,
};

/// Reply type of a request type (request value + 128).
constexpr MsgType reply_type(MsgType request) noexcept {
  return static_cast<MsgType>(static_cast<std::uint16_t>(request) + 128);
}

/// Error codes carried by kError replies (and ServeError).
enum class ErrorCode : std::uint32_t {
  kBadRequest = 1,    ///< malformed payload, invalid ids, bad op
  kUnknownGraph = 2,  ///< graph_id was never loaded
  kUnsupported = 3,   ///< e.g. path load on a server without a loader
  kInternal = 4,      ///< pipeline failure (uncertified result)
};

/// Malformed bytes on the wire (bad magic/version/type, truncation,
/// trailing payload bytes, oversized frames).
class ProtocolError : public std::runtime_error {
 public:
  explicit ProtocolError(const std::string& what)
      : std::runtime_error("serve: " + what) {}
};

/// A request that parsed but cannot be served; the server turns this into
/// a kError reply carrying `code`.
class ServeError : public std::runtime_error {
 public:
  ServeError(ErrorCode code, const std::string& what)
      : std::runtime_error(what), code_(code) {}
  ErrorCode code() const noexcept { return code_; }

 private:
  ErrorCode code_;
};

/// One decoded frame.
struct Frame {
  MsgType type = MsgType::kError;
  std::uint64_t request_id = 0;
  std::vector<std::uint8_t> payload;
};

/// Serializes header + payload into wire bytes.
std::vector<std::uint8_t> encode_frame(const Frame& frame);

/// Incremental frame decoder for a byte stream. feed() appends raw bytes;
/// next() pops the earliest complete frame. Malformed input throws
/// ProtocolError and poisons the reader (the connection must be dropped).
class FrameReader {
 public:
  void feed(const std::uint8_t* data, std::size_t size);
  /// True if a complete frame was popped into `out`.
  bool next(Frame& out);
  std::size_t buffered() const noexcept { return buffer_.size(); }

 private:
  std::deque<std::uint8_t> buffer_;
};

// --- Payload encode/decode helpers ---------------------------------------

/// Appends little-endian scalars and length-prefixed strings to a byte
/// vector; the write-side half of the payload codec.
class PayloadWriter {
 public:
  explicit PayloadWriter(std::vector<std::uint8_t>& out) : out_(out) {}
  void u8(std::uint8_t v);
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void str(const std::string& s);  ///< u32 length + raw bytes

 private:
  std::vector<std::uint8_t>& out_;
};

/// Bounds-checked little-endian reads; throws ProtocolError on underflow.
/// finish() additionally rejects trailing bytes, making decoders strict.
class PayloadReader {
 public:
  explicit PayloadReader(const std::vector<std::uint8_t>& bytes)
      : data_(bytes.data()), size_(bytes.size()) {}
  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  std::string str();
  std::size_t remaining() const noexcept { return size_ - pos_; }
  void finish() const;

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

// --- Message payloads -----------------------------------------------------

/// Parameters every compute-like request carries; together with the graph
/// content hash they form the result-cache key.
struct ComputeParams {
  std::uint32_t alpha = 2;   ///< arboricity bound fed to shatter_driver
  std::uint64_t seed = 1;    ///< pipeline seed
  friend bool operator==(const ComputeParams&, const ComputeParams&) = default;
};

/// One dynamic-graph update op. Vertex ops ignore `v`; kAddVertex also
/// ignores `u` (the new vertex id is the current node count).
enum class UpdateOp : std::uint8_t {
  kInsertEdge = 0,
  kRemoveEdge = 1,
  kAddVertex = 2,
  kDetachVertex = 3,
};

struct EdgeUpdate {
  UpdateOp op = UpdateOp::kInsertEdge;
  graph::NodeId u = 0;
  graph::NodeId v = 0;
};

struct LoadGraphRequest {
  std::uint64_t graph_id = 0;
  bool from_path = false;
  std::string path;                     ///< when from_path
  graph::NodeId num_nodes = 0;          ///< when inline
  std::vector<graph::Edge> edges;       ///< when inline
};

struct LoadGraphReply {
  graph::NodeId num_nodes = 0;
  std::uint64_t num_edges = 0;
  std::uint64_t content_hash = 0;
};

struct ComputeMisRequest {
  std::uint64_t graph_id = 0;
  ComputeParams params;
};

struct ComputeMisReply {
  std::uint64_t mis_size = 0;
  std::uint64_t labels_hash = 0;
  std::uint64_t content_hash = 0;
  std::uint8_t cache_hit = 0;
  std::uint8_t certified = 0;
  std::uint32_t attempts = 0;
  std::uint64_t rounds = 0;
};

struct QueryRequest {
  std::uint64_t graph_id = 0;
  ComputeParams params;
  std::vector<graph::NodeId> nodes;
};

struct QueryReply {
  std::vector<std::uint8_t> states;  ///< mis::MisState per queried node
  std::uint8_t cache_hit = 0;
};

struct UpdateEdgesRequest {
  std::uint64_t graph_id = 0;
  ComputeParams params;
  std::vector<EdgeUpdate> ops;
};

struct UpdateEdgesReply {
  std::uint64_t epoch = 0;       ///< update batches applied so far
  std::uint8_t incremental = 0;  ///< repaired on the residual only
  std::uint8_t certified = 0;
  graph::NodeId residual = 0;    ///< nodes the repair re-ran on
  std::uint64_t mis_size = 0;
  std::uint64_t labels_hash = 0;
  std::uint64_t content_hash = 0;
};

struct VerifyRequest {
  std::uint64_t graph_id = 0;
  ComputeParams params;
};

struct VerifyReply {
  std::uint8_t ok = 0;
  std::uint64_t mis_size = 0;
  std::uint64_t labels_hash = 0;
};

/// Service counters, encoded as a fixed-order field list (docs/SERVING.md).
struct StatsReply {
  std::uint64_t requests_total = 0;
  std::uint64_t errors = 0;
  std::uint64_t graphs_loaded = 0;
  std::uint64_t computes = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t queries = 0;
  std::uint64_t updates = 0;
  std::uint64_t update_ops = 0;
  std::uint64_t repairs_incremental = 0;
  std::uint64_t repairs_full = 0;
  std::uint64_t repairs_certified = 0;
  std::uint64_t verifies = 0;
  std::uint64_t cache_evictions = 0;
  friend bool operator==(const StatsReply&, const StatsReply&) = default;
};

/// Metrics snapshot request. The request carries its own payload version
/// so the exposition format can evolve without bumping the frame
/// protocol; version 1 is the only one defined and selects the
/// arbmis.metrics.v1 JSON document.
inline constexpr std::uint16_t kMetricsPayloadVersion = 1;

struct MetricsRequest {
  std::uint16_t version = kMetricsPayloadVersion;
};

struct MetricsReply {
  std::uint16_t version = kMetricsPayloadVersion;
  std::string json;  ///< arbmis.metrics.v1 document (obs/registry.h)
};

struct DumpRecorderRequest {
  /// When nonzero the server clears the ring after snapshotting, so a
  /// scraper can collect disjoint windows.
  std::uint8_t clear_after = 0;
};

struct DumpRecorderReply {
  std::uint8_t recorder_attached = 0;  ///< 0 => `artifact` is empty
  std::uint64_t buffered_events = 0;
  std::uint64_t evicted_events = 0;
  /// Complete ARBMISEV binary artifact (obs/recorder.h snapshot()).
  std::string artifact;
};

struct ErrorReply {
  std::uint32_t code = 0;
  std::string message;
};

// Payload codecs. Decoders validate strictly (ProtocolError on any
// malformation, including trailing bytes).
void encode(PayloadWriter& w, const LoadGraphRequest& m);
void encode(PayloadWriter& w, const LoadGraphReply& m);
void encode(PayloadWriter& w, const ComputeMisRequest& m);
void encode(PayloadWriter& w, const ComputeMisReply& m);
void encode(PayloadWriter& w, const QueryRequest& m);
void encode(PayloadWriter& w, const QueryReply& m);
void encode(PayloadWriter& w, const UpdateEdgesRequest& m);
void encode(PayloadWriter& w, const UpdateEdgesReply& m);
void encode(PayloadWriter& w, const VerifyRequest& m);
void encode(PayloadWriter& w, const VerifyReply& m);
void encode(PayloadWriter& w, const StatsReply& m);
void encode(PayloadWriter& w, const MetricsRequest& m);
void encode(PayloadWriter& w, const MetricsReply& m);
void encode(PayloadWriter& w, const DumpRecorderRequest& m);
void encode(PayloadWriter& w, const DumpRecorderReply& m);
void encode(PayloadWriter& w, const ErrorReply& m);

void decode(PayloadReader& r, LoadGraphRequest& m);
void decode(PayloadReader& r, LoadGraphReply& m);
void decode(PayloadReader& r, ComputeMisRequest& m);
void decode(PayloadReader& r, ComputeMisReply& m);
void decode(PayloadReader& r, QueryRequest& m);
void decode(PayloadReader& r, QueryReply& m);
void decode(PayloadReader& r, UpdateEdgesRequest& m);
void decode(PayloadReader& r, UpdateEdgesReply& m);
void decode(PayloadReader& r, VerifyRequest& m);
void decode(PayloadReader& r, VerifyReply& m);
void decode(PayloadReader& r, StatsReply& m);
void decode(PayloadReader& r, MetricsRequest& m);
void decode(PayloadReader& r, MetricsReply& m);
void decode(PayloadReader& r, DumpRecorderRequest& m);
void decode(PayloadReader& r, DumpRecorderReply& m);
void decode(PayloadReader& r, ErrorReply& m);

/// Builds a complete frame for `message` (encode + header).
template <typename Message>
Frame make_frame(MsgType type, std::uint64_t request_id,
                 const Message& message) {
  Frame f;
  f.type = type;
  f.request_id = request_id;
  PayloadWriter w(f.payload);
  encode(w, message);
  return f;
}

/// Decodes a frame payload as `Message`, strictly (no trailing bytes).
template <typename Message>
Message parse_payload(const Frame& frame) {
  PayloadReader r(frame.payload);
  Message m;
  decode(r, m);
  r.finish();
  return m;
}

}  // namespace arbmis::serve
